//! GraphRec (Fan et al., WWW 2019): graph attention over both the social
//! and the interaction graph.
//!
//! The distinguishing mechanism: user latent factors combine an
//! *item-space* aggregation (attention over interacted items) and a
//! *social-space* aggregation (attention over friends' item-space
//! factors), fused by a learned combination layer; item latent factors
//! attentively aggregate the users who interacted with them.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_tensor::{Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

/// One attention-aggregation block: edges grouped by destination.
struct EdgeSet {
    seg: Rc<Vec<usize>>,
    src: Rc<Vec<usize>>,
    dst: Rc<Vec<usize>>,
}

impl EdgeSet {
    fn from_csr(csr: &dgnn_tensor::Csr) -> Self {
        let mut dst = Vec::with_capacity(csr.nnz());
        for r in 0..csr.rows() {
            dst.extend(std::iter::repeat(r).take(csr.degree(r)));
        }
        Self {
            seg: Rc::new(csr.row_ptr().to_vec()),
            src: Rc::new(csr.col_idx().to_vec()),
            dst: Rc::new(dst),
        }
    }

    fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

struct State {
    e_user: ParamId,
    e_item: ParamId,
    /// Attention MLPs per aggregation space (item→user, friend→user,
    /// user→item): a `d × d` transform and a `d × 1` scorer each.
    attn_w: [ParamId; 3],
    attn_v: [ParamId; 3],
    /// Combination layer `2d × d` fusing item-space and social-space.
    combine: ParamId,
    iu_edges: EdgeSet, // item → user (grouped by user)
    ss_edges: EdgeSet, // friend → user (grouped by user)
    ui_edges: EdgeSet, // user → item (grouped by item)
}

/// Attention aggregation: `out[dst] = Σ_e softmax(attn(src_e, dst_e)) src_e`.
fn attend(
    tape: &mut Tape,
    params: &ParamSet,
    w: ParamId,
    v: ParamId,
    src_feat: Var,
    dst_feat: Var,
    edges: &EdgeSet,
    num_dst: usize,
    dim: usize,
) -> Var {
    if edges.is_empty() {
        return tape.constant(Matrix::zeros(num_dst, dim));
    }
    let s = tape.gather(src_feat, Rc::clone(&edges.src));
    let t = tape.gather(dst_feat, Rc::clone(&edges.dst));
    let joint = tape.mul(s, t);
    let w = tape.param(params, w);
    let hidden = tape.matmul(joint, w);
    let hidden = tape.leaky_relu(hidden, 0.2);
    let v = tape.param(params, v);
    let logits = tape.matmul(hidden, v);
    let alpha = tape.segment_softmax(logits, Rc::clone(&edges.seg));
    tape.segment_weighted_sum(alpha, s, Rc::clone(&edges.seg))
}

fn forward(st: &State, dim: usize, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let eu = tape.param(params, st.e_user);
    let ev = tape.param(params, st.e_item);
    let num_users = tape.value(eu).rows();
    let num_items = tape.value(ev).rows();

    // Item-space user factors.
    let h_item_space =
        attend(tape, params, st.attn_w[0], st.attn_v[0], ev, eu, &st.iu_edges, num_users, dim);
    let h_item_space = tape.add(h_item_space, eu);

    // Social-space: friends' item-space factors, attended.
    let h_social = attend(
        tape,
        params,
        st.attn_w[1],
        st.attn_v[1],
        h_item_space,
        eu,
        &st.ss_edges,
        num_users,
        dim,
    );

    // Fuse the two spaces.
    let cat = tape.concat_cols(&[h_item_space, h_social]);
    let cw = tape.param(params, st.combine);
    let fused = tape.matmul(cat, cw);
    let users = tape.leaky_relu(fused, 0.2);

    // Item latent: attention over interacting users.
    let z = attend(tape, params, st.attn_w[2], st.attn_v[2], eu, ev, &st.ui_edges, num_items, dim);
    let items = tape.add(ev, z);
    (users, items)
}

/// The GraphRec recommender.
pub struct GraphRec {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl GraphRec {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }
}

impl Recommender for GraphRec {
    fn name(&self) -> &str {
        "GraphRec"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("GraphRec", user, items)
    }
}

impl Trainable for GraphRec {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let d = self.cfg.dim;
        let e_user = params.add("e_user", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
        let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng));
        let mut attn_w = Vec::new();
        let mut attn_v = Vec::new();
        for space in ["item", "social", "user"] {
            attn_w.push(params.add(format!("attn_w/{space}"), Init::XavierUniform.build(d, d, &mut rng)));
            attn_v.push(params.add(format!("attn_v/{space}"), Init::XavierUniform.build(d, 1, &mut rng)));
        }
        let combine = params.add("combine", Init::XavierUniform.build(2 * d, d, &mut rng));
        let st = State {
            e_user,
            e_item,
            attn_w: [attn_w[0], attn_w[1], attn_w[2]],
            attn_v: [attn_v[0], attn_v[1], attn_v[2]],
            combine,
            iu_edges: EdgeSet::from_csr(g.ui()),
            ss_edges: EdgeSet::from_csr(g.ss()),
            ui_edges: EdgeSet::from_csr(g.iu()),
        };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, _| {
                let (users, items) = forward(&st, d, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, d, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn graphrec_beats_random() {
        assert_beats_random(&mut GraphRec::new(quick()));
    }
}
