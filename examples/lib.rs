//! Shared helpers for the runnable examples. The examples themselves live
//! next to this file (`quickstart.rs`, `social_cold_start.rs`,
//! `knowledge_catalog.rs`) and are ordinary binaries:
//!
//! ```text
//! cargo run --release -p dgnn-examples --bin quickstart
//! ```

use dgnn_eval::{evaluate_at, Recommender};

/// Pretty-prints HR/NDCG at a cutoff.
pub fn report(model: &dyn Recommender, test: &[dgnn_data::TestInstance], n: usize) {
    let m = evaluate_at(model, test, n);
    println!("{:<8} HR@{n} = {:.4}   NDCG@{n} = {:.4}", model.name(), m.hr, m.ndcg);
}
