//! Deterministic parameter initializers.

use crate::Matrix;
use rand::Rng;

/// Parameter initialization schemes.
///
/// The paper initializes embeddings with small uniform noise and weight
/// matrices with Xavier/Glorot scaling (the PyTorch defaults its released
/// code relies on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (bias terms).
    Zeros,
    /// All entries equal to the given constant.
    Constant(f32),
    /// Uniform in `[-limit, limit]`.
    Uniform(f32),
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
}

impl Init {
    /// Materializes a `rows × cols` matrix with this scheme.
    pub fn build(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Constant(c) => Matrix::full(rows, cols, c),
            Init::Uniform(limit) => {
                Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
            }
            Init::XavierUniform => xavier_uniform(rows, cols, rng),
        }
    }
}

/// Xavier/Glorot uniform initialization treating `rows` as fan-in and
/// `cols` as fan-out.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(64, 16, &mut rng);
        let limit = (6.0 / 80.0_f32).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
        // Should not be degenerate.
        assert!(w.sq_norm() > 0.0);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Init::Uniform(0.1).build(8, 8, &mut StdRng::seed_from_u64(42));
        let b = Init::Uniform(0.1).build(8, 8, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn zeros_and_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Init::Zeros.build(2, 2, &mut rng).as_slice().iter().all(|&v| v == 0.0));
        assert!(Init::Constant(0.5)
            .build(2, 2, &mut rng)
            .as_slice()
            .iter()
            .all(|&v| v == 0.5));
    }
}
