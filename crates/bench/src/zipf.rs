//! Seeded Zipf request sampler for the serving load tiers.
//!
//! Real recommendation traffic is head-heavy: a small set of users issues
//! most requests. The load harnesses used to stride uniformly over the
//! user space, which understates cache/residency effects at small scale
//! and *overstates* shard fan-out at large scale (uniform traffic touches
//! every shard immediately, hiding exactly the laziness `BENCH_scale.json`
//! exists to measure). Both the serve tier and the scale tier now draw
//! users from a Zipf(θ) distribution: rank `k` (0-based user id `k`) is
//! requested with probability `(1/(k+1)^θ) / H_{n,θ}` where `H_{n,θ}` is
//! the generalized harmonic number.
//!
//! Sampling is inverse-CDF over a precomputed table shared between client
//! threads (`Arc<[f64]>` — one table per distribution, not per client),
//! with a per-client xorshift* state so concurrent clients draw
//! decorrelated streams from identical seeds deterministically. No
//! dependency on `rand`: the harness keeps its own generator so load
//! replay is stable even if the workspace RNG evolves.

use std::sync::Arc;

/// A seeded Zipf(θ) sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Arc<[f64]>,
    state: u64,
}

impl Zipf {
    /// Builds the distribution table for `n` ranks at exponent `theta`
    /// and seeds the stream.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta` is not finite — harness
    /// configuration errors, not data.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(theta.is_finite() && theta >= 0.0, "non-finite Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf: cdf.into(), state: mix(seed) }
    }

    /// A decorrelated stream over the same distribution (the table is
    /// shared, only the generator state forks). Client `i` of a load
    /// harness uses `fork(i)`.
    pub fn fork(&self, stream: u64) -> Self {
        Self { cdf: Arc::clone(&self.cdf), state: mix(self.state ^ mix(stream.wrapping_add(1))) }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws the next rank in `0..n`.
    pub fn sample(&mut self) -> usize {
        // xorshift64* — tiny, seeded, good enough for load shaping.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let bits = self.state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        // First index whose cumulative mass covers u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Analytic probability of rank `k` (0-based) — exposed for tests and
    /// for sizing expected shard fan-out.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// SplitMix64 finalizer: hardens small/related seeds into full-entropy
/// xorshift states (a raw small seed would start the stream near zero).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let out = z ^ (z >> 31);
    if out == 0 {
        0x9E37_79B9_7F4A_7C15 // xorshift must never be seeded with zero
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_forked_streams_differ() {
        let mut a = Zipf::new(100, 1.0, 7);
        let mut b = Zipf::new(100, 1.0, 7);
        let seq_a: Vec<usize> = (0..50).map(|_| a.sample()).collect();
        let seq_b: Vec<usize> = (0..50).map(|_| b.sample()).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same stream");
        let mut c = Zipf::new(100, 1.0, 7).fork(1);
        let seq_c: Vec<usize> = (0..50).map(|_| c.sample()).collect();
        assert_ne!(seq_a, seq_c, "forked stream must decorrelate");
    }

    #[test]
    fn frequencies_match_analytic_top_ranks() {
        let n = 1_000;
        let theta = 1.1;
        let draws = 200_000usize;
        let mut z = Zipf::new(n, theta, 2023);
        let mut counts = vec![0u32; n];
        for _ in 0..draws {
            counts[z.sample()] += 1;
        }
        // The top ranks carry enough mass for a tight relative check:
        // P(0) ≈ 0.13 at θ=1.1, so 200k draws give ~26k hits (±1% at 3σ).
        for k in 0..8 {
            let expect = z.pmf(k) * draws as f64;
            let got = f64::from(counts[k]);
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < 0.05,
                "rank {k}: observed {got}, analytic {expect:.0} (rel err {rel:.3})"
            );
        }
        // Mass must decay along ranks overall (smoothed: head vs tail).
        let head: u32 = counts[..n / 10].iter().sum();
        let tail: u32 = counts[n - n / 10..].iter().sum();
        assert!(head > tail * 10, "head mass {head} not dominating tail {tail}");
    }

    #[test]
    fn pmf_sums_to_one_and_samples_stay_in_range() {
        let mut z = Zipf::new(37, 1.4, 5);
        let total: f64 = (0..37).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for _ in 0..10_000 {
            assert!(z.sample() < 37);
        }
        // theta = 0 degenerates to uniform: pmf flat.
        let u = Zipf::new(10, 0.0, 1);
        for k in 0..10 {
            assert!((u.pmf(k) - 0.1).abs() < 1e-12);
        }
    }
}
