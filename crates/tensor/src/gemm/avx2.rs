//! AVX2/FMA 8×8 f32 microkernel over packed panels.
//!
//! The register tile is one `ymm` accumulator per row (8 column lanes), so
//! output element `(i, j)` is lane `j` of `acc[i]` for the entire `k`
//! loop: a pure chain of `vfmadd` operations from `0.0` in ascending `kk`
//! order. That fixed per-lane fold is the whole determinism argument —
//! nothing about partitioning, panel position, or thread count can reach
//! the arithmetic.

#[cfg(target_arch = "x86")]
use std::arch::x86 as arch;
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64 as arch;

use arch::{
    __m256, _mm256_add_ps, _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps,
    _mm256_setzero_ps, _mm256_storeu_ps,
};

/// Computes one `8 × 8` register tile over packed panels `pa` (column-major
/// `8 × k` A panel) and `pb` (row-major `k × 8` B panel), then stores the
/// top-left `rows × cols` corner to `c` with row stride `rsc` — overwriting
/// when `acc` is false, adding one `+` per element when true.
///
/// # Safety
/// Caller must guarantee: the CPU supports `avx2` and `fma` (the dispatch
/// in [`super::tile_loop`] checks via `is_x86_feature_detected!`); `pa` and
/// `pb` point to at least `8 * k` readable floats each; and for every
/// `i < rows`, `j < cols`, the address `c + i*rsc + j` is writable —
/// i.e. `c` covers the partition's output chunk with `rows <= 8`,
/// `cols <= min(8, rsc)`.
// SAFETY: the `# Safety` contract above is the full argument — feature
// availability is established by the dispatcher's runtime detection, and
// the panel/output pointers are in-bounds by the tile geometry.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn kernel_8x8(
    k: usize,
    pa: *const f32,
    pb: *const f32,
    c: *mut f32,
    rsc: usize,
    rows: usize,
    cols: usize,
    acc: bool,
) {
    // SAFETY: delegated to the caller contract above — every pointer
    // arithmetic below stays inside the `8*k` panels and the `rows×cols`
    // corner of `c`, and the target features are verified before dispatch.
    unsafe {
        let mut t: [__m256; 8] = [_mm256_setzero_ps(); 8];
        for kk in 0..k {
            let b = _mm256_loadu_ps(pb.add(kk * 8));
            let a = pa.add(kk * 8);
            // Fully unrolled by the fixed bound: 8 broadcasts + 8 fmadds
            // per kk, one accumulator register per output row.
            for (i, ti) in t.iter_mut().enumerate() {
                let ai = _mm256_broadcast_ss(&*a.add(i));
                *ti = _mm256_fmadd_ps(ai, b, *ti);
            }
        }
        for (i, ti) in t.iter().enumerate().take(rows) {
            let row = c.add(i * rsc);
            if cols == 8 {
                if acc {
                    // One rounded `+` per element after the register fold:
                    // bit-identical to temp-then-add_assign.
                    _mm256_storeu_ps(row, _mm256_add_ps(_mm256_loadu_ps(row), *ti));
                } else {
                    _mm256_storeu_ps(row, *ti);
                }
            } else {
                let mut tmp = [0.0f32; 8];
                _mm256_storeu_ps(tmp.as_mut_ptr(), *ti);
                for (j, &v) in tmp.iter().enumerate().take(cols) {
                    if acc {
                        *row.add(j) += v;
                    } else {
                        *row.add(j) = v;
                    }
                }
            }
        }
    }
}
