//! The latent-factor world model that substitutes the Ciao/Epinions/Yelp
//! crawls.
//!
//! All three relation families are generated from one ground-truth factor
//! space:
//!
//! * each *category* (the paper's meta relation node) owns a prototype
//!   factor vector; items are noisy copies of their category prototype,
//!   which makes same-category items genuinely similar (the "semantic
//!   relatedness" the paper's `T` matrix encodes);
//! * each *community* of users prefers a subset of categories; user factors
//!   are noisy mixtures of their community's preferred prototypes;
//! * interactions are sampled proportionally to `exp(β·⟨user, item⟩)` with
//!   power-law per-user activity, so collaborative signal exists and is
//!   recoverable;
//! * social ties connect factor-similar users inside a community
//!   (homophily), so `S` genuinely predicts preference overlap.
//!
//! Because `Y`, `S`, and `T` all derive from the same factors, models that
//! exploit social and knowledge context gain real accuracy, and the paper's
//! ablations (`-S`, `-T`, `-ST`) lose it — the property every figure of the
//! evaluation depends on.

use dgnn_graph::{HeteroGraph, HeteroGraphBuilder};
use rand::Rng;

/// Parameters of the synthetic world.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// Dataset name.
    pub name: &'static str,
    /// `|U|`.
    pub num_users: usize,
    /// `|V|`.
    pub num_items: usize,
    /// `|R|` — number of categories / meta relation nodes.
    pub num_categories: usize,
    /// Number of user communities (each prefers a few categories).
    pub num_communities: usize,
    /// Ground-truth latent dimensionality.
    pub factor_dim: usize,
    /// Target number of interactions (approximate; duplicates dropped).
    pub target_interactions: usize,
    /// Target number of undirected social ties (approximate).
    pub target_social_ties: usize,
    /// Softmax inverse temperature for preference sampling; larger = less
    /// noise in user choices.
    pub beta: f32,
    /// Std-dev of item factor noise around the category prototype.
    pub item_noise: f32,
    /// Std-dev of user factor noise around the community mixture.
    pub user_noise: f32,
    /// Probability an item gets a second category link.
    pub second_category_prob: f64,
}

impl WorldSpec {
    /// Generates the full heterogeneous graph.
    pub fn generate(&self, rng: &mut impl Rng) -> HeteroGraph {
        assert!(self.num_users > 1 && self.num_items > 1, "world too small");
        assert!(self.num_categories >= 1, "need at least one category");
        let d = self.factor_dim;

        // Category prototypes: random unit-ish vectors.
        let protos: Vec<Vec<f32>> = (0..self.num_categories)
            .map(|_| normal_vec(rng, d, 1.0))
            .collect();

        // Items: category assignment (roughly balanced) + noisy prototype.
        let mut item_cat = Vec::with_capacity(self.num_items);
        let mut item_factor = Vec::with_capacity(self.num_items);
        for v in 0..self.num_items {
            let c = v % self.num_categories;
            item_cat.push(c);
            let mut f = protos[c].clone();
            add_noise(rng, &mut f, self.item_noise);
            item_factor.push(f);
        }

        // Communities: each prefers 1–3 categories.
        let prefs: Vec<Vec<usize>> = (0..self.num_communities)
            .map(|k| {
                let mut cats = vec![k % self.num_categories];
                while cats.len() < 3.min(self.num_categories) && rng.gen_bool(0.6) {
                    cats.push(rng.gen_range(0..self.num_categories));
                }
                cats
            })
            .collect();

        // Users: community assignment + mixture of preferred prototypes.
        let mut user_comm = Vec::with_capacity(self.num_users);
        let mut user_factor = Vec::with_capacity(self.num_users);
        for u in 0..self.num_users {
            let k = u % self.num_communities;
            user_comm.push(k);
            let mut f = vec![0.0f32; d];
            for &c in &prefs[k] {
                for (fi, pi) in f.iter_mut().zip(&protos[c]) {
                    *fi += pi / prefs[k].len() as f32;
                }
            }
            add_noise(rng, &mut f, self.user_noise);
            user_factor.push(f);
        }

        let mut builder =
            HeteroGraphBuilder::new(self.num_users, self.num_items, self.num_categories);

        // Item–relation links.
        for v in 0..self.num_items {
            builder.item_relation(v, item_cat[v]);
            if self.num_categories > 1 && rng.gen_bool(self.second_category_prob) {
                let extra = rng.gen_range(0..self.num_categories);
                if extra != item_cat[v] {
                    builder.item_relation(v, extra);
                }
            }
        }

        // Interactions: per-user activity ~ clipped Pareto, items sampled
        // by preference softmax over a candidate pool.
        let mean_activity = self.target_interactions as f64 / self.num_users as f64;
        let pool_size = 200.min(self.num_items);
        for u in 0..self.num_users {
            let n = pareto_count(rng, mean_activity, 2.0).clamp(2, self.num_items / 2);
            // Candidate pool: uniform random items; softmax-weighted picks.
            let mut chosen = Vec::with_capacity(n);
            let mut t = 0u32;
            while chosen.len() < n {
                // Restrict the pool to not-yet-chosen items: with a peaked
                // softmax (large beta) rejection sampling over the full item
                // set can need e^{beta·margin} draws per new item, which
                // turns high-activity users into a near-infinite loop.
                let pool: Vec<usize> = (0..pool_size)
                    .map(|_| rng.gen_range(0..self.num_items))
                    .filter(|v| !chosen.contains(v))
                    .collect();
                if pool.is_empty() {
                    continue; // all draws were duplicates; redraw
                }
                let logits: Vec<f32> = pool
                    .iter()
                    .map(|&v| self.beta * dot(&user_factor[u], &item_factor[v]))
                    .collect();
                let pick = pool[sample_softmax(rng, &logits)];
                builder.interaction(u, pick, t);
                chosen.push(pick);
                t += 1;
            }
        }

        // Social ties: homophilous within communities.
        let mut ties = 0usize;
        let mut attempts = 0usize;
        let max_attempts = self.target_social_ties * 50;
        while ties < self.target_social_ties && attempts < max_attempts {
            attempts += 1;
            let a = rng.gen_range(0..self.num_users);
            // Candidate friends: prefer same community.
            let b = if rng.gen_bool(0.85) {
                // Same community pick.
                let k = user_comm[a];
                let start = rng.gen_range(0..self.num_users);
                match (0..self.num_users)
                    .map(|off| (start + off) % self.num_users)
                    .find(|&c| c != a && user_comm[c] == k)
                {
                    Some(c) => c,
                    None => continue,
                }
            } else {
                rng.gen_range(0..self.num_users)
            };
            if a == b {
                continue;
            }
            // Accept with probability increasing in factor similarity, so
            // ties encode genuine homophily even within a community.
            let sim = dot(&user_factor[a], &user_factor[b])
                / (norm(&user_factor[a]) * norm(&user_factor[b]) + 1e-9);
            if rng.gen_bool((0.15 + 0.85 * ((sim as f64 + 1.0) / 2.0)).clamp(0.0, 1.0)) {
                builder.social_tie(a, b);
                ties += 1;
            }
        }

        builder.build()
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

fn normal_vec(rng: &mut impl Rng, d: usize, std: f32) -> Vec<f32> {
    (0..d).map(|_| normal(rng) * std).collect()
}

fn add_noise(rng: &mut impl Rng, v: &mut [f32], std: f32) {
    for x in v {
        *x += normal(rng) * std;
    }
}

/// Box–Muller standard normal.
fn normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Pareto-distributed count with the given mean and shape `alpha > 1`
/// (power-law user activity / degree distributions, as observed in the
/// review-site crawls).
fn pareto_count(rng: &mut impl Rng, mean: f64, alpha: f64) -> usize {
    let xm = mean * (alpha - 1.0) / alpha; // scale so E[X] = mean
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (xm / u.powf(1.0 / alpha)).round().max(1.0) as usize
}

fn sample_softmax(rng: &mut impl Rng, logits: &[f32]) -> usize {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f64> = logits.iter().map(|&l| ((l - max) as f64).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut target = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_spec() -> WorldSpec {
        WorldSpec {
            name: "test-world",
            num_users: 60,
            num_items: 120,
            num_categories: 6,
            num_communities: 4,
            factor_dim: 8,
            target_interactions: 600,
            target_social_ties: 200,
            beta: 3.0,
            item_noise: 0.3,
            user_noise: 0.3,
            second_category_prob: 0.1,
        }
    }

    #[test]
    fn generates_requested_scale() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = small_spec().generate(&mut rng);
        assert_eq!(g.num_users(), 60);
        assert_eq!(g.num_items(), 120);
        assert_eq!(g.num_relations(), 6);
        // Interactions land near the target (Pareto activity fluctuates).
        let n = g.interactions().len();
        assert!((300..=1200).contains(&n), "got {n} interactions");
        let ties = g.social_ties().len();
        assert!((100..=200).contains(&ties), "got {ties} ties");
        // Every item has at least one category.
        for v in 0..g.num_items() {
            assert!(!g.ir().row_cols(v).is_empty(), "item {v} lacks a category");
        }
    }

    #[test]
    fn every_user_has_history() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = small_spec().generate(&mut rng);
        for u in 0..g.num_users() {
            assert!(g.items_of(u).len() >= 2, "user {u} has <2 interactions");
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = small_spec().generate(&mut StdRng::seed_from_u64(5));
        let b = small_spec().generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a.interactions(), b.interactions());
        assert_eq!(a.social_ties(), b.social_ties());
        assert_eq!(a.item_relations(), b.item_relations());
    }

    #[test]
    fn social_ties_are_homophilous() {
        // Friends should share items more often than random pairs: the
        // homophily property the whole paper relies on.
        let mut rng = StdRng::seed_from_u64(13);
        let spec = small_spec();
        let g = spec.generate(&mut rng);
        let overlap = |a: usize, b: usize| -> f64 {
            let ia = g.items_of(a);
            let ib = g.items_of(b);
            let inter = ia.iter().filter(|v| ib.contains(v)).count();
            inter as f64 / ia.len().min(ib.len()).max(1) as f64
        };
        let mut friend_overlap = 0.0;
        for &(a, b) in g.social_ties() {
            friend_overlap += overlap(a as usize, b as usize);
        }
        friend_overlap /= g.social_ties().len() as f64;
        let mut random_overlap = 0.0;
        let mut pairs = 0;
        for a in 0..g.num_users() {
            let b = (a + g.num_users() / 2 + 1) % g.num_users();
            random_overlap += overlap(a, b);
            pairs += 1;
        }
        random_overlap /= pairs as f64;
        assert!(
            friend_overlap > random_overlap,
            "friends ({friend_overlap:.4}) should overlap more than random pairs \
             ({random_overlap:.4})"
        );
    }

    #[test]
    fn same_category_items_share_users() {
        // Knowledge signal: co-category items should attract overlapping
        // audiences more than cross-category ones.
        let mut rng = StdRng::seed_from_u64(14);
        let g = small_spec().generate(&mut rng);
        let audience_overlap = |a: usize, b: usize| -> f64 {
            let ua = g.users_of(a);
            let ub = g.users_of(b);
            if ua.is_empty() || ub.is_empty() {
                return 0.0;
            }
            let inter = ua.iter().filter(|u| ub.contains(u)).count();
            inter as f64 / ua.len().min(ub.len()) as f64
        };
        let cat_of = |v: usize| g.ir().row_cols(v)[0];
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for a in 0..g.num_items() {
            for b in (a + 1)..(a + 8).min(g.num_items()) {
                let o = audience_overlap(a, b);
                if cat_of(a) == cat_of(b) {
                    same = (same.0 + o, same.1 + 1);
                } else {
                    diff = (diff.0 + o, diff.1 + 1);
                }
            }
        }
        let same_avg = same.0 / same.1.max(1) as f64;
        let diff_avg = diff.0 / diff.1.max(1) as f64;
        assert!(
            same_avg >= diff_avg,
            "same-category overlap {same_avg:.4} < cross-category {diff_avg:.4}"
        );
    }
}
