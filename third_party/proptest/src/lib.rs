//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range and
//! tuple strategies, `collection::vec`, `any::<T>()`, `prop_map`, and the
//! `prop_assert*` macros. Unlike upstream proptest there is no shrinking:
//! a failing case reports its seed and input count so it can be replayed
//! deterministically (every case derives from the test name + case index).

// The int impls are macro-generated over {u8..u64}; the u64 instantiation
// makes `as $t` a trivial cast, which the workspace lint would flag.
#![allow(trivial_numeric_casts)]

use rand::rngs::StdRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{RngCore, SampleRange};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Strategy for `any::<T>()`: the type's full value domain.
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Uniform draw over the whole domain of `T`.
    pub fn any<T>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Anything usable as the size argument of [`vec`]: a fixed length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// `Vec` strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test execution configuration and failure plumbing.

    /// Number of cases each property runs (upstream default is 256; this
    /// stand-in defaults lower to keep CI fast without shrinking support).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Deterministic per-case RNG: FNV-1a over the test name, mixed with the
/// case index.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Declares property tests. Each function runs `Config::cases` times with
/// inputs drawn from the given strategies; the body may use
/// `prop_assert!`/`prop_assert_eq!` and `return Ok(())` for early exit.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg.clone();
                for case in 0..cfg.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, cfg.cases, e,
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs((a, b) in (1usize..5, 0u8..3), v in collection::vec(-1.0f32..1.0, 2..9)) {
            prop_assert!((1..5).contains(&a));
            prop_assert!(b < 3);
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(n in (2usize..6).prop_map(|x| x * 10)) {
            prop_assert!(n % 10 == 0 && (20..60).contains(&n));
            if n == 0 {
                return Ok(());
            }
        }
    }

    #[test]
    fn macros_run_the_declared_tests() {
        ranges_and_vecs();
        prop_map_applies();
    }
}
