//! Shard-loader: the single module that touches segment files as raw
//! bytes, via `mmap(2)` or positional reads.
//!
//! Everything above this layer (manifest validation, DGCK parsing, the
//! lazy engine backend) consumes a [`SegmentBytes`] — an owned-or-mapped
//! byte region — and never does its own file-length arithmetic or raw
//! paging. Lint rule 15 (`shard-bounds`) enforces that boundary: raw
//! `mmap`/`pread`-family calls anywhere else in the workspace need a
//! `// SHARD:` justification.
//!
//! The read mechanism is selected by `DGNN_MMAP`:
//!
//! * `auto` (default) — memory-map on Linux/x86_64, positional reads
//!   elsewhere;
//! * `on` — require mapping; degrades to reads with a stderr warning on
//!   targets without the raw-syscall path (never crashes);
//! * `off` — always positional reads.
//!
//! Mapping reads the file through the page cache with no intermediate
//! heap buffer: DGCK parsing walks the mapped region directly, and the
//! pages are returned to the kernel on drop (`munmap`). The fallback
//! path reads the whole file into one owned buffer first. Both produce
//! identical bytes, so every checksum and every parsed tensor is
//! independent of the knob.

use std::fs::File;
use std::io;
use std::path::Path;

/// `DGNN_MMAP` knob: how segment files are brought into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapMode {
    /// Map when the platform supports it, otherwise positional reads.
    Auto,
    /// Map; warn and fall back to reads where unsupported.
    On,
    /// Never map.
    Off,
}

impl MapMode {
    /// Parses `DGNN_MMAP` (`auto` when unset; unknown values warn and
    /// fall back to `auto` rather than failing startup).
    pub fn from_env() -> Self {
        match std::env::var("DGNN_MMAP").ok().as_deref() {
            None | Some("auto") | Some("") => Self::Auto,
            Some("on") | Some("1") => Self::On,
            Some("off") | Some("0") => Self::Off,
            Some(other) => {
                eprintln!("DGNN_MMAP={other:?} not recognized (want auto|on|off); using auto");
                Self::Auto
            }
        }
    }

    /// Whether this mode resolves to mapping on the current target.
    pub fn resolves_to_map(self) -> bool {
        match self {
            Self::Off => false,
            Self::Auto => map_supported(),
            Self::On => {
                if !map_supported() {
                    eprintln!("DGNN_MMAP=on but this target has no mmap path; using positional reads");
                }
                map_supported()
            }
        }
    }
}

/// Returns `true` on targets with the raw-syscall mapping path.
pub fn map_supported() -> bool {
    cfg!(all(target_os = "linux", target_arch = "x86_64"))
}

/// A segment file's bytes: either one owned buffer (positional-read
/// path) or a read-only private mapping (unmapped on drop).
pub enum SegmentBytes {
    /// Whole file read into a heap buffer.
    Owned(Vec<u8>),
    /// Whole file mapped read-only.
    Mapped(MappedFile),
}

impl std::ops::Deref for SegmentBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            Self::Owned(v) => v,
            Self::Mapped(m) => m.as_bytes(),
        }
    }
}

/// Reads `path` fully, by mapping when `mode` resolves to it. Returns the
/// bytes plus whether a mapping was actually used (for metrics).
pub fn read_segment_bytes(path: &Path, mode: MapMode) -> io::Result<(SegmentBytes, bool)> {
    if mode.resolves_to_map() {
        match MappedFile::open(path) {
            Ok(Some(m)) => return Ok((SegmentBytes::Mapped(m), true)),
            Ok(None) => {} // unsupported target (cfg'd out); fall through
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(e),
            Err(e) => {
                // Mapping can fail where plain reads still work (e.g. a
                // filesystem without mmap support); serving must degrade,
                // not die.
                eprintln!("mmap of {} failed ({e}); falling back to reads", path.display());
            }
        }
    }
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    let len = usize::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "segment larger than address space"))?;
    let mut buf = Vec::with_capacity(len);
    io::Read::read_to_end(&mut file, &mut buf)?;
    Ok((SegmentBytes::Owned(buf), false))
}

/// A read-only, private, whole-file memory mapping.
pub struct MappedFile {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) and owned
// exclusively by this struct until munmap in Drop, so sharing the region
// across threads is no different from sharing a &[u8].
unsafe impl Send for MappedFile {}
// SAFETY: see Send — the region is read-only for the mapping's lifetime.
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps `path` read-only. `Ok(None)` on targets without the raw
    /// syscall path (caller falls back to positional reads).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub fn open(path: &Path) -> io::Result<Option<Self>> {
        use std::os::fd::AsRawFd;
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "segment larger than address space"))?;
        if len == 0 {
            // mmap(len = 0) is EINVAL by spec; an empty segment can never
            // be a valid DGCK file anyway, so surface it as such.
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "zero-length segment file"));
        }
        const SYS_MMAP: i64 = 9;
        const PROT_READ: i64 = 1;
        const MAP_PRIVATE: i64 = 2;
        let fd = i64::from(file.as_raw_fd());
        let ret: i64;
        // SAFETY: raw mmap(2): addr=NULL (kernel placement), read-only and
        // private over an fd we own across the call; the kernel returns a
        // fresh mapping aliasing no Rust-managed memory, or -errno in rax.
        // The asm clobbers only rax/rcx/r11 per the x86_64 syscall ABI.
        unsafe {
            // SIMD: inline asm for a raw syscall, not data-path vector
            // code — the GEMM subsystem's SIMD contracts do not apply.
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MMAP => ret,
                in("rdi") 0i64,
                in("rsi") len as i64,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd,
                in("r9") 0i64,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        // mmap returns a (page-aligned) pointer on success or -errno in
        // [-4095, -1] on failure.
        if (-4095..0).contains(&ret) {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        // The fd can be closed once the mapping exists; `file` drops here.
        Ok(Some(Self { ptr: ret as usize as *const u8, len }))
    }

    /// No raw mapping path on this target.
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    pub fn open(_path: &Path) -> io::Result<Option<Self>> {
        Ok(None)
    }

    /// The mapped region as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr/len delimit a live PROT_READ mapping owned by self;
        // the kernel guarantees the range is readable until munmap, which
        // only Drop performs, and &self borrows prevent outliving it.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never constructed today; mapping a
    /// zero-length file is rejected at open).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            const SYS_MUNMAP: i64 = 11;
            let ret: i64;
            // SAFETY: raw munmap(2) over exactly the region mmap returned;
            // after this call nothing dereferences ptr (self is being
            // dropped and as_bytes borrows cannot outlive it). Clobbers
            // only rax/rcx/r11 per the syscall ABI.
            unsafe {
                // SIMD: inline asm for a raw syscall, not data-path vector
                // code — the GEMM subsystem's SIMD contracts do not apply.
                core::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_MUNMAP => ret,
                    in("rdi") self.ptr as usize as i64,
                    in("rsi") self.len as i64,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            debug_assert_eq!(ret, 0, "munmap of a valid mapping cannot fail");
        }
    }
}

/// Lazily-loaded sharded embedding store.
///
/// Each shard slot is a tiny state machine — `Empty → Loading → Resident`
/// or `Empty → Loading → Failed` — realized with a `OnceLock`: the first
/// query to touch a shard pays the load (digest check + DGCK parse), every
/// later one reads the resident table, and concurrent first-touches
/// coalesce into a single load. A failed load is sticky: the typed error
/// message is cached so repeated queries against a corrupt shard answer
/// 503 deterministically instead of re-reading a bad file forever.
///
/// Residency and load latency are published through `dgnn-obs` shared
/// metrics (`serve/shard/*`) and exposed directly via [`LazyStore::stats`]
/// so tests and the loadgen `--check` gate can assert "RSS bounded by
/// touched shards" from loader ground truth rather than noisy process RSS
/// alone.
pub struct LazyStore {
    seg: crate::segment::SegmentedCheckpoint,
    user_slots: Vec<std::sync::OnceLock<Result<crate::segment::UserShard, String>>>,
    item_slots: Vec<std::sync::OnceLock<Result<dgnn_tensor::Matrix, String>>>,
}

/// Loader ground truth for residency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// User shards in the manifest.
    pub user_total: usize,
    /// User shards currently resident (successfully loaded).
    pub user_resident: usize,
    /// Bytes of resident user embedding rows (`rows × dim × 4`).
    pub user_resident_bytes: u64,
    /// Bytes the full user table would occupy resident.
    pub user_table_bytes: u64,
    /// Item shards in the manifest.
    pub item_total: usize,
    /// Item shards currently resident.
    pub item_resident: usize,
    /// Whether loads go through the mmap path.
    pub mapped: bool,
}

impl LazyStore {
    /// Wraps an opened segmented checkpoint; loads nothing yet.
    pub fn new(seg: crate::segment::SegmentedCheckpoint) -> Self {
        let user_slots = (0..seg.user_spec().num_shards()).map(|_| std::sync::OnceLock::new()).collect();
        let item_slots = (0..seg.item_spec().num_shards()).map(|_| std::sync::OnceLock::new()).collect();
        dgnn_obs::shared::gauge("serve/shard/user_total").set(seg.user_spec().num_shards() as f64);
        dgnn_obs::shared::gauge("serve/shard/item_total").set(seg.item_spec().num_shards() as f64);
        Self { seg, user_slots, item_slots }
    }

    /// Total users covered by the store.
    pub fn num_users(&self) -> usize {
        self.seg.user_spec().rows()
    }

    /// Total items covered by the store.
    pub fn num_items(&self) -> usize {
        self.seg.item_spec().rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.seg.dim()
    }

    /// Item-table id-range spec (drives the per-shard scoring loop).
    pub fn item_spec(&self) -> dgnn_tensor::ShardSpec {
        self.seg.item_spec()
    }

    /// User-table id-range spec.
    pub fn user_spec(&self) -> dgnn_tensor::ShardSpec {
        self.seg.user_spec()
    }

    fn record_load(t0: u64) {
        let dt = dgnn_obs::now_ns().saturating_sub(t0) as f64 / 1e6;
        dgnn_obs::shared::counter("serve/shard/loads").add(1);
        dgnn_obs::shared::hist("serve/shard/load_ms").record(dt);
    }

    fn publish_residency(&self) {
        let stats = self.stats();
        dgnn_obs::shared::gauge("serve/shard/user_resident").set(stats.user_resident as f64);
        dgnn_obs::shared::gauge("serve/shard/user_resident_bytes").set(stats.user_resident_bytes as f64);
        dgnn_obs::shared::gauge("serve/shard/item_resident").set(stats.item_resident as f64);
    }

    /// User shard `s`, loading it on first touch.
    pub fn user_shard(&self, s: usize) -> Result<&crate::segment::UserShard, String> {
        let mut loaded_now = false;
        let r = self.user_slots[s].get_or_init(|| {
            let t0 = dgnn_obs::now_ns();
            let loaded = self.seg.load_user_shard(s).map_err(|e| e.to_string());
            Self::record_load(t0);
            loaded_now = true;
            loaded
        });
        if loaded_now {
            self.publish_residency();
        }
        r.as_ref().map_err(|e| e.clone())
    }

    /// Item shard `s`, loading it on first touch.
    pub fn item_shard(&self, s: usize) -> Result<&dgnn_tensor::Matrix, String> {
        let mut loaded_now = false;
        let r = self.item_slots[s].get_or_init(|| {
            let t0 = dgnn_obs::now_ns();
            let loaded = self.seg.load_item_shard(s).map_err(|e| e.to_string());
            Self::record_load(t0);
            loaded_now = true;
            loaded
        });
        if loaded_now {
            self.publish_residency();
        }
        r.as_ref().map_err(|e| e.clone())
    }

    /// Scoring-embedding row for one user, loading its shard on demand.
    /// Errors carry `(shard, detail)` for the 503 path.
    pub fn user_row(&self, user: usize) -> Result<&[f32], (usize, String)> {
        let (s, local) = self.user_spec().locate(user);
        let shard = self.user_shard(s).map_err(|e| (s, e))?;
        Ok(shard.emb.row(local))
    }

    /// The user's seen items (empty when the shard is unloadable — seen
    /// filtering is advisory and must not turn a scoring query into 503
    /// on its own).
    pub fn seen(&self, user: usize) -> &[u32] {
        if user >= self.num_users() {
            return &[];
        }
        let (s, local) = self.user_spec().locate(user);
        match self.user_shard(s) {
            Ok(shard) => {
                let lo = shard.seen_indptr[local] as usize;
                let hi = shard.seen_indptr[local + 1] as usize;
                &shard.seen_items[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Current residency snapshot.
    pub fn stats(&self) -> ShardStats {
        let row_bytes = self.dim() as u64 * 4;
        let mut user_resident = 0usize;
        let mut user_resident_bytes = 0u64;
        for slot in &self.user_slots {
            if let Some(Ok(u)) = slot.get() {
                user_resident += 1;
                user_resident_bytes += u.emb.rows() as u64 * row_bytes;
            }
        }
        let item_resident = self.item_slots.iter().filter(|s| matches!(s.get(), Some(Ok(_)))).count();
        ShardStats {
            user_total: self.user_spec().num_shards(),
            user_resident,
            user_resident_bytes,
            user_table_bytes: self.num_users() as u64 * row_bytes,
            item_total: self.item_spec().num_shards(),
            item_resident,
            mapped: self.seg.uses_map(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("dgnn-shard-{}-{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapped_and_owned_bytes_agree() {
        let payload: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        let path = tmp_file("agree", &payload);
        let (owned, used_map) = read_segment_bytes(&path, MapMode::Off).unwrap();
        assert!(!used_map);
        assert_eq!(&*owned, &payload[..]);
        if map_supported() {
            let (mapped, used_map) = read_segment_bytes(&path, MapMode::On).unwrap();
            assert!(used_map);
            assert_eq!(&*mapped, &payload[..]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_not_found_in_both_modes() {
        let path = std::env::temp_dir().join("dgnn-shard-definitely-absent.seg");
        for mode in [MapMode::Off, MapMode::Auto, MapMode::On] {
            match read_segment_bytes(&path, mode) {
                Err(err) => assert_eq!(err.kind(), io::ErrorKind::NotFound),
                Ok(_) => panic!("absent file must not read"),
            }
        }
    }

    #[test]
    fn zero_length_file_errs_when_mapped() {
        if !map_supported() {
            return;
        }
        let path = tmp_file("empty", &[]);
        assert!(MappedFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn env_knob_parses() {
        // Only exercises the pure resolution logic; the env var itself is
        // owned by the process launcher.
        assert!(!MapMode::Off.resolves_to_map());
        assert_eq!(MapMode::Auto.resolves_to_map(), map_supported());
    }
}
