//! Compressed-sparse-row matrices for graph propagation.

use crate::Matrix;

/// A CSR sparse matrix of `f32`.
///
/// This is the storage every adjacency matrix in the reproduction uses: one
/// `Csr` per relation type (user–item, social, item–relation), with values
/// holding the normalization weights (e.g. `1/(|N^S_u| + |N^Y_u|)` from
/// Eq. 4–6 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl Csr {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row-pointer array (length `rows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, grouped by row.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, aligned with [`Csr::col_idx`].
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Out-degree (stored entries) of row `r`.
    #[inline]
    pub fn degree(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// An empty `rows × cols` matrix with no stored entries.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Sparse–dense product `self · dense`.
    ///
    /// This is the propagation kernel: `O(nnz · d)`. Partitioned over
    /// output rows on the kernel pool: each output row is accumulated by
    /// exactly one partition, scanning its stored entries in CSR order,
    /// so the result is bit-identical to the serial loop.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm: {}x{} · {}x{} shape mismatch",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        let d = dense.cols();
        let mut out = Matrix::zeros(self.rows, d);
        let src = dense.as_slice();
        // Average-nnz cost estimate; row skew just shifts load balance,
        // never results.
        let work = ((self.nnz() / self.rows.max(1)).max(1)).saturating_mul(d.max(1));
        // Per partition: row_ptr entries for its rows plus the fencepost
        // (`r.end`), the nnz slice those pointers bracket in col_idx/values
        // (partitions chain contiguously because row_ptr is monotone), and
        // — since stored columns are data-dependent — all of `dense`.
        let reads = |r: &std::ops::Range<usize>| {
            use crate::sanitize::Access;
            let ptr_hi = r.end + usize::from(r.end > r.start);
            vec![
                Access::read(0, r.start..ptr_hi),
                Access::read(1, self.row_ptr[r.start]..self.row_ptr[r.end]),
                Access::read(2, self.row_ptr[r.start]..self.row_ptr[r.end]),
                Access::read(3, 0..src.len()),
            ]
        };
        crate::parallel::par_row_chunks("spmm", out.as_mut_slice(), self.rows, d, work, reads, |range, chunk| {
            for (off, r) in range.enumerate() {
                let out_row = &mut chunk[off * d..(off + 1) * d];
                for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                    let c = self.col_idx[i];
                    let w = self.values[i];
                    for (o, &x) in out_row.iter_mut().zip(&src[c * d..(c + 1) * d]) {
                        *o += w * x;
                    }
                }
            }
        });
        out
    }

    /// Transposed copy (CSR of `selfᵀ`), used for back-propagating through
    /// [`Csr::spmm`].
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[i];
                let pos = cursor[c];
                cursor[c] += 1;
                col_idx[pos] = r;
                values[pos] = self.values[i];
            }
        }
        Csr { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// Densifies into a [`Matrix`] (test/debug helper; quadratic memory).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out[(r, c)] += v;
            }
        }
        out
    }

    /// Returns a copy whose rows are rescaled so each non-empty row sums to
    /// one (row-stochastic / mean-aggregation weights).
    pub fn row_normalized(&self) -> Csr {
        let mut out = self.clone();
        for r in 0..out.rows {
            let lo = out.row_ptr[r];
            let hi = out.row_ptr[r + 1];
            let sum: f32 = out.values[lo..hi].iter().sum();
            if sum > 0.0 {
                for v in &mut out.values[lo..hi] {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Returns a copy with symmetric normalization `D^{-1/2} A D^{-1/2}`
    /// computed from row and column degree sums (GCN-style weighting; used
    /// by the NGCF/GCCF baselines).
    pub fn sym_normalized(&self) -> Csr {
        let mut row_deg = vec![0.0f32; self.rows];
        let mut col_deg = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                row_deg[r] += v;
                col_deg[c] += v;
            }
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for i in out.row_ptr[r]..out.row_ptr[r + 1] {
                let c = out.col_idx[i];
                let denom = (row_deg[r] * col_deg[c]).sqrt();
                if denom > 0.0 {
                    out.values[i] /= denom;
                }
            }
        }
        out
    }
}

/// Incremental builder accepting unordered `(row, col, value)` triplets.
///
/// Duplicate coordinates are *summed* at [`CsrBuilder::build`] time, which is
/// the natural semantics for accumulating multi-edges (e.g. motif counts in
/// the MHCN baseline).
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    triplets: Vec<(usize, usize, f32)>,
}

impl CsrBuilder {
    /// Starts a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, triplets: Vec::new() }
    }

    /// Queues one entry; duplicates accumulate.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows, "CsrBuilder: row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "CsrBuilder: col {col} out of bounds ({})", self.cols);
        self.triplets.push((row, col, value));
    }

    /// Number of queued triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// True when no triplets were queued.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Finalizes into a [`Csr`] with sorted column indices per row and
    /// duplicates merged by summation.
    pub fn build(mut self) -> Csr {
        self.triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_counts = vec![0usize; self.rows + 1];
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(self.triplets.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(r, c, v) in &self.triplets {
            if prev == Some((r, c)) {
                *values.last_mut().expect("values parallel to col_idx") += v;
                continue;
            }
            col_idx.push(c);
            values.push(v);
            row_counts[r + 1] += 1;
            prev = Some((r, c));
        }
        let mut row_ptr = row_counts;
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        Csr { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn small() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut b = CsrBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(2, 0, 3.0);
        b.push(2, 1, 4.0);
        b.build()
    }

    #[test]
    fn builder_roundtrip_dense() {
        let a = small();
        let d = a.to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 2)], 2.0);
        assert_eq!(d[(1, 1)], 0.0);
        assert_eq!(d[(2, 1)], 4.0);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.degree(1), 0);
    }

    #[test]
    fn builder_merges_duplicates() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        b.push(1, 0, 1.0);
        let a = b.build();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_dense()[(0, 1)], 3.5);
    }

    #[test]
    fn builder_sorts_unordered_input() {
        let mut b = CsrBuilder::new(2, 3);
        b.push(1, 2, 1.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        b.push(0, 0, 1.0);
        let a = b.build();
        assert_eq!(a.row_cols(0), &[0, 1]);
        assert_eq!(a.row_cols(1), &[0, 2]);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = small();
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        assert!(approx_eq(&sparse, &dense, 1e-6));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = small();
        assert!(approx_eq(&a.transpose().to_dense(), &a.to_dense().transpose(), 0.0));
        // Double transpose roundtrips.
        assert!(approx_eq(&a.transpose().transpose().to_dense(), &a.to_dense(), 0.0));
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let n = small().row_normalized();
        let d = n.to_dense();
        assert!((d.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(d.row(1).iter().sum::<f32>(), 0.0); // empty row stays empty
        assert!((d.row(2).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sym_normalized_known_value() {
        // Single edge graph: A = [[0,1],[0,0]]; row deg 1, col deg 1 → value 1.
        let mut b = CsrBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        let s = b.build().sym_normalized();
        assert!((s.to_dense()[(0, 1)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_matrix_spmm_is_zero() {
        let a = Csr::empty(4, 3);
        let x = Matrix::full(3, 2, 1.0);
        let y = a.spmm(&x);
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y.sum(), 0.0);
    }
}
