//! The autodiff tape: forward-op recording and the reverse pass.
//!
//! Allocation discipline: this file is the workspace's hottest allocation
//! site, so the source lint forbids `.clone()` here unless the line carries
//! a `// PLAN:` comment explaining why the copy is necessary and how the
//! memory planner accounts for it.

use std::rc::Rc;

use dgnn_tensor::{stable_sigmoid, Csr, Matrix};

use crate::params::{ParamId, ParamSet};
use crate::plan::TapePlan;
use crate::recorder::{Recorder, Var};

/// One recorded operation. Kept private: the public API is the builder
/// surface of [`Recorder`] as implemented by [`Tape`].
#[derive(Debug)]
enum Op {
    /// Constant or parameter leaf; `param` links back to the [`ParamSet`].
    Leaf { param: Option<ParamId> },
    Add(Var, Var),
    Sub(Var, Var),
    /// Elementwise product. `a` and `b` may be the same variable.
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatMul(Var, Var),
    Transpose(Var),
    Sigmoid(Var),
    Tanh(Var),
    LeakyRelu(Var, f32),
    Relu(Var),
    Exp(Var),
    /// `ln(1 + eˣ)` with a numerically stable forward.
    Softplus(Var),
    /// Natural logarithm (domain-checked statically by the auditor).
    Ln(Var),
    /// Elementwise quotient `a ⊘ b`.
    Div(Var, Var),
    /// Elementwise square root.
    Sqrt(Var),
    /// Add a `1 × d` row vector to every row.
    AddRow(Var, Var),
    /// Multiply every row elementwise by a `1 × d` row vector.
    MulRow(Var, Var),
    /// Multiply row `i` by scalar `col[i]` (`col` is `n × 1`).
    MulCol(Var, Var),
    SumAll(Var),
    MeanAll(Var),
    RowSum(Var),
    ColMean(Var),
    ConcatCols(Vec<Var>),
    SliceCols { a: Var, start: usize, end: usize },
    /// Embedding lookup: output row `i` is `a.row(idx[i])`.
    Gather { a: Var, idx: Rc<Vec<usize>> },
    /// Sparse propagation `A · b`; `at` is `Aᵀ` for the backward pass.
    Spmm { at: Rc<Csr>, b: Var },
    /// Row-wise LayerNorm without affine terms (compose with
    /// [`Recorder::mul_row`]/[`Recorder::add_row`] for ω₁/ω₂ of the
    /// paper's Eq. 7).
    LayerNormRow { a: Var, eps: f32 },
    /// Row-wise L2 normalization (DGCF intent routing).
    RowL2Norm { a: Var, eps: f32 },
    /// `n × 1` of per-row dot products of two equally-shaped matrices.
    RowDots(Var, Var),
    SoftmaxRows(Var),
    /// Per-segment softmax over a column vector of edge logits, segments
    /// given by a CSR-style `seg` pointer (edges grouped by target node).
    SegmentSoftmax { logits: Var, seg: Rc<Vec<usize>> },
    /// `out[n] = Σ_{e ∈ seg(n)} w[e] · v.row(e)` — attention aggregation.
    SegmentWeightedSum { w: Var, v: Var, seg: Rc<Vec<usize>> },
    /// Elementwise product with a fixed (non-differentiated) mask.
    Dropout { a: Var, mask: Matrix },
}

impl Op {
    /// Portable op-kind name, matching [`crate::meta::ALL_OPS`] — the key
    /// under which `dgnn-obs` aggregates this op's profile, chosen so a
    /// profile row lines up with the static analyzer's view of the graph.
    fn kind(&self) -> &'static str {
        match self {
            Op::Leaf { param: Some(_) } => "param",
            Op::Leaf { param: None } => "constant",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Neg(..) => "neg",
            Op::Scale(..) => "scale",
            Op::AddScalar(..) => "add_scalar",
            Op::MatMul(..) => "matmul",
            Op::Transpose(..) => "transpose",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Relu(..) => "relu",
            Op::Exp(..) => "exp",
            Op::Softplus(..) => "softplus",
            Op::Ln(..) => "ln",
            Op::Div(..) => "div",
            Op::Sqrt(..) => "sqrt",
            Op::AddRow(..) => "add_row",
            Op::MulRow(..) => "mul_row",
            Op::MulCol(..) => "mul_col",
            Op::SumAll(..) => "sum_all",
            Op::MeanAll(..) => "mean_all",
            Op::RowSum(..) => "row_sum",
            Op::ColMean(..) => "col_mean",
            Op::ConcatCols(..) => "concat_cols",
            Op::SliceCols { .. } => "slice_cols",
            Op::Gather { .. } => "gather",
            Op::Spmm { .. } => "spmm",
            Op::LayerNormRow { .. } => "layer_norm_rows",
            Op::RowL2Norm { .. } => "l2_normalize_rows",
            Op::RowDots(..) => "row_dots",
            Op::SoftmaxRows(..) => "softmax_rows",
            Op::SegmentSoftmax { .. } => "segment_softmax",
            Op::SegmentWeightedSum { .. } => "segment_weighted_sum",
            Op::Dropout { .. } => "dropout",
        }
    }
}

struct Node {
    op: Op,
    value: Matrix,
    /// Forward shape, kept after `value` is freed: several backward rules
    /// (`sum_all`, `gather`, `slice_cols`, …) need only the shape, and
    /// routing them here lets the planner free those values early.
    shape: (usize, usize),
    /// True once a memory plan retired this node's value; any later value
    /// read is a planner bug and panics loudly (the runtime backstop behind
    /// the static safety proof).
    freed: bool,
}

/// Records one forward pass and computes gradients on demand.
///
/// A tape is cheap to construct; build a fresh one per training step. The
/// graph-building surface lives on the [`Recorder`] trait so that models
/// written against `R: Recorder` can also be abstractly interpreted (shape
/// checking, dead-subgraph audits) without executing any tensor math.
///
/// With [`Tape::with_plan`] the tape becomes a *planned executor*: forward
/// values are retired into the thread's [`dgnn_tensor::BufferPool`] at
/// their statically computed death points — during recording (values whose
/// last consumer is a forward op) and during [`Tape::backward_into`]
/// (values last read by a gradient rule). Planned and unplanned execution
/// are bit-identical; the plan only changes *when storage is reused*.
pub struct Tape {
    nodes: Vec<Node>,
    finite_checks: bool,
    plan: Option<Rc<TapePlan>>,
    /// `Some(mark)` while per-op profiling is armed (observability enabled
    /// at construction): the timestamp of the previous op boundary.
    /// Forward durations are *inter-push deltas* — everything since the
    /// last boundary is attributed to the op being pushed — so one clock
    /// read per op covers compute that happens in the `Recorder` methods
    /// before `push` runs.
    obs_mark: Option<u64>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape. Per-op profiling is armed here iff
    /// [`dgnn_obs::is_enabled`] at this moment; a tape built while
    /// observability is off stays unobserved for its whole life, keeping
    /// each step's profile internally consistent.
    pub fn new() -> Self {
        let obs_mark = dgnn_obs::is_enabled().then(dgnn_obs::now_ns);
        Self { nodes: Vec::new(), finite_checks: false, plan: None, obs_mark }
    }

    /// Arms a memory plan: as recording and backward proceed, node values
    /// are freed at the plan's death points (see [`TapePlan`]). The plan
    /// must have been computed for exactly the graph about to be recorded;
    /// the tape asserts the node counts match and panics on any read of a
    /// freed value.
    pub fn with_plan(mut self, plan: Rc<TapePlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// True when a memory plan is armed.
    pub fn is_planned(&self) -> bool {
        self.plan.is_some()
    }

    /// Enables (or disables) the runtime finite-value guard: with checks
    /// on, every recorded op asserts — in release builds too — that its
    /// forward value contains no NaN/∞, panicking at the first op that
    /// produces one instead of minutes later in a corrupted optimizer
    /// state. Defaults to off; debug builds always check.
    pub fn with_finite_checks(mut self, on: bool) -> Self {
        self.finite_checks = on;
        self
    }

    /// True when the runtime finite-value guard is enabled.
    pub fn finite_checks(&self) -> bool {
        self.finite_checks
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a variable.
    ///
    /// # Panics
    /// Panics if an armed memory plan already freed the value — that read
    /// would observe recycled storage, so the plan is unsound for this
    /// graph and execution must stop.
    pub fn value(&self, v: Var) -> &Matrix {
        let node = &self.nodes[v.0];
        assert!(
            !node.freed,
            "value of node {} read after its planned free point — the memory plan is unsound",
            v.0
        );
        &node.value
    }

    /// Forward shape of a variable (available even after a planned free).
    fn shape_of(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].shape
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        if let Some(mark) = self.obs_mark {
            let now = dgnn_obs::now_ns();
            dgnn_obs::record_op(op.kind(), dgnn_obs::OpPhase::Forward, now.saturating_sub(mark));
            self.obs_mark = Some(now);
        }
        if self.finite_checks {
            assert!(value.all_finite(), "non-finite value produced by {op:?}");
        } else {
            debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        }
        let shape = value.shape();
        self.nodes.push(Node { op, value, shape, freed: false });
        let i = self.nodes.len() - 1;
        if let Some(plan) = &self.plan {
            let plan = Rc::clone(plan);
            assert!(
                i < plan.len(),
                "tape recorded more nodes ({}) than the memory plan covers ({}) — \
                 the plan was computed for a different graph",
                i + 1,
                plan.len()
            );
            for &d in &plan.forward_free[i] {
                self.free_node(d as usize);
            }
        }
        Var(i)
    }

    /// Retires one node's forward value into the thread's buffer pool.
    fn free_node(&mut self, i: usize) {
        let node = &mut self.nodes[i];
        debug_assert!(!node.freed, "node {i} freed twice — the plan checker should reject this");
        node.freed = true;
        // The replaced value drops here; `Matrix::drop` retires its storage
        // into the installed pool for reuse by a later node.
        let _ = std::mem::replace(&mut node.value, Matrix::zeros(0, 0));
    }

    // ---- reverse pass ------------------------------------------------------

    /// Runs the reverse pass from `loss` (which must be `1 × 1`) and
    /// *accumulates* parameter gradients into `params`. Returns the loss
    /// value as `f32` for logging.
    ///
    /// With a plan armed ([`Tape::with_plan`]) the sweep additionally
    /// retires forward values at their statically computed backward death
    /// points and recycles consumed gradient matrices. The arithmetic —
    /// including the ascending-order leaf-gradient accumulation, which
    /// matters because parameters appear as multiple leaves and `f32`
    /// addition is order-sensitive — is identical either way.
    pub fn backward_into(&mut self, loss: Var, params: &mut ParamSet) -> f32 {
        // PLAN: Rc handle clone, not a matrix copy — no buffer involved.
        if let Some(plan) = self.plan.clone() {
            return self.backward_into_planned(loss, params, &plan);
        }
        let grads = self.backward(loss);
        for (i, g) in grads.iter().enumerate() {
            if let (Op::Leaf { param: Some(id) }, Some(g)) = (&self.nodes[i].op, g) {
                params.accumulate_grad(*id, g);
            }
        }
        self.value(loss)[(0, 0)]
    }

    /// Planned reverse pass: same math as [`Tape::backward`], plus
    /// statically scheduled frees after each node's backward step.
    fn backward_into_planned(&mut self, loss: Var, params: &mut ParamSet, plan: &TapePlan) -> f32 {
        let shape = self.value(loss).shape();
        assert_eq!(shape, (1, 1), "backward: loss must be a 1×1 scalar, got {shape:?}");
        assert_eq!(
            plan.len(),
            self.nodes.len(),
            "memory plan covers {} nodes but the tape recorded {} — plan/graph mismatch",
            plan.len(),
            self.nodes.len()
        );
        let loss_val = self.value(loss)[(0, 0)];
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));
        for i in (0..=loss.0).rev() {
            if let Some(g) = grads[i].take() {
                self.backprop_node_observed(i, &g, &mut grads);
                if matches!(self.nodes[i].op, Op::Leaf { param: Some(_) }) {
                    // Kept until the ascending accumulation pass below.
                    grads[i] = Some(g);
                }
                // Non-leaf gradients drop here and recycle into the pool.
            }
            // Frees fire whether or not a gradient flowed: the plan's
            // liveness conservatively assumes every backward read happens,
            // so a skipped node only means the read never occurs.
            for &d in &plan.backward_free[i] {
                self.free_node(d as usize);
            }
        }
        for (i, g) in grads.iter().enumerate() {
            if let (Op::Leaf { param: Some(id) }, Some(g)) = (&self.nodes[i].op, g) {
                params.accumulate_grad(*id, g);
            }
        }
        loss_val
    }

    /// Runs the reverse pass and returns the gradient of `loss` with
    /// respect to every node (None where no gradient flowed).
    pub fn backward(&self, loss: Var) -> Vec<Option<Matrix>> {
        let shape = self.value(loss).shape();
        assert_eq!(shape, (1, 1), "backward: loss must be a 1×1 scalar, got {shape:?}");
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));
        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            self.backprop_node_observed(i, &g, &mut grads);
            grads[i] = Some(g);
        }
        grads
    }

    /// Gradient of `loss` w.r.t. one variable (convenience for tests).
    pub fn grad_of(&self, loss: Var, wrt: Var) -> Option<Matrix> {
        self.backward(loss).into_iter().nth(wrt.0).flatten()
    }

    /// Runs one node's backward rule, timing it when profiling is armed.
    /// Backward durations are exact per-rule measurements (unlike the
    /// forward pass's inter-push deltas): the rule runs between two clock
    /// reads with nothing else in the interval.
    fn backprop_node_observed(&self, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        match self.obs_mark {
            Some(_) => {
                let t0 = dgnn_obs::now_ns();
                self.backprop_node(i, g, grads);
                let dt = dgnn_obs::now_ns().saturating_sub(t0);
                dgnn_obs::record_op(self.nodes[i].op.kind(), dgnn_obs::OpPhase::Backward, dt);
            }
            None => self.backprop_node(i, g, grads),
        }
    }

    fn accum(grads: &mut [Option<Matrix>], v: Var, g: Matrix) {
        match &mut grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&self, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        use Op::*;
        match &self.nodes[i].op {
            Leaf { .. } => {}
            Add(a, b) => {
                // PLAN: gradient fan-out needs one copy per operand; pooled
                // storage backs both and each is recycled at its death point.
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.clone());
            }
            Sub(a, b) => {
                // PLAN: fan-out copy, pooled and recycled (see Add above).
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.scale(-1.0));
            }
            Mul(a, b) => {
                Self::accum(grads, *a, g.mul_elem(self.value(*b)));
                Self::accum(grads, *b, g.mul_elem(self.value(*a)));
            }
            Neg(a) => Self::accum(grads, *a, g.scale(-1.0)),
            Scale(a, k) => Self::accum(grads, *a, g.scale(*k)),
            // PLAN: fan-out copy, pooled and recycled (see Add above).
            AddScalar(a) => Self::accum(grads, *a, g.clone()),
            MatMul(a, b) => {
                // dA = G·Bᵀ ; dB = Aᵀ·G
                Self::accum(grads, *a, g.matmul_nt(self.value(*b)));
                Self::accum(grads, *b, self.value(*a).matmul_tn(g));
            }
            Transpose(a) => Self::accum(grads, *a, g.transpose()),
            // Fused activation gradients: no slope matrix is materialized,
            // but each multiplies in the same per-element order as the
            // unfused `slope.mul_elem(g)` form, so results are bit-identical
            // (enforced by unit tests in dgnn-tensor).
            Sigmoid(a) => {
                Self::accum(grads, *a, self.value(Var(i)).sigmoid_grad(g));
            }
            Tanh(a) => {
                Self::accum(grads, *a, self.value(Var(i)).tanh_grad(g));
            }
            LeakyRelu(a, alpha) => {
                Self::accum(grads, *a, self.value(*a).leaky_relu_grad(g, *alpha));
            }
            Relu(a) => {
                Self::accum(grads, *a, self.value(*a).relu_grad(g));
            }
            Exp(a) => Self::accum(grads, *a, g.mul_elem(self.value(Var(i)))),
            Softplus(a) => {
                Self::accum(grads, *a, self.value(*a).softplus_grad(g));
            }
            Ln(a) => {
                let dy = self.value(*a).map(|x| 1.0 / x);
                Self::accum(grads, *a, g.mul_elem(&dy));
            }
            Div(a, b) => {
                // d(a/b)/da = 1/b ; d(a/b)/db = −a/b²
                let inv_b = self.value(*b).map(|x| 1.0 / x);
                Self::accum(grads, *a, g.mul_elem(&inv_b));
                let gb = g.mul_elem(self.value(*a)).mul_elem(&inv_b).mul_elem(&inv_b).scale(-1.0);
                Self::accum(grads, *b, gb);
            }
            Sqrt(a) => {
                let dy = self.value(Var(i)).map(|y| 0.5 / y);
                Self::accum(grads, *a, g.mul_elem(&dy));
            }
            AddRow(a, row) => {
                // PLAN: fan-out copy, pooled and recycled (see Add above).
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *row, g.col_sums());
            }
            MulRow(a, row) => {
                Self::accum(grads, *a, g.mul_row_broadcast(self.value(*row)));
                let grow = g.mul_elem(self.value(*a)).col_sums();
                Self::accum(grads, *row, grow);
            }
            MulCol(a, col) => {
                Self::accum(grads, *a, g.mul_col_broadcast(self.value(*col)));
                let gcol = g.row_dots(self.value(*a));
                Self::accum(grads, *col, gcol);
            }
            SumAll(a) => {
                let (r, c) = self.shape_of(*a);
                Self::accum(grads, *a, Matrix::full(r, c, g[(0, 0)]));
            }
            MeanAll(a) => {
                let (r, c) = self.shape_of(*a);
                let k = g[(0, 0)] / (r * c).max(1) as f32;
                Self::accum(grads, *a, Matrix::full(r, c, k));
            }
            RowSum(a) => {
                let (r, c) = self.shape_of(*a);
                let ga = Matrix::from_fn(r, c, |row, _| g[(row, 0)]);
                Self::accum(grads, *a, ga);
            }
            ColMean(a) => {
                let (r, c) = self.shape_of(*a);
                let k = 1.0 / r.max(1) as f32;
                let ga = Matrix::from_fn(r, c, |_, col| g[(0, col)] * k);
                Self::accum(grads, *a, ga);
            }
            ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let w = self.shape_of(p).1;
                    Self::accum(grads, p, g.slice_cols(off, off + w));
                    off += w;
                }
            }
            SliceCols { a, start, end } => {
                let (r, c) = self.shape_of(*a);
                let mut ga = Matrix::zeros(r, c);
                for row in 0..r {
                    ga.row_mut(row)[*start..*end].copy_from_slice(g.row(row));
                }
                Self::accum(grads, *a, ga);
            }
            Gather { a, idx } => {
                // Scatter straight into the accumulator: materializing (and
                // zeroing) a fresh dense table per gather dominated NGCF's
                // backward profile. The table is zeroed once, on the first
                // gradient contribution, and every later gather scatters
                // only its touched rows.
                let (r, c) = self.shape_of(*a);
                let acc = grads[a.0].get_or_insert_with(|| Matrix::zeros(r, c));
                acc.scatter_add_rows(idx, g);
            }
            Spmm { at, b, .. } => {
                Self::accum(grads, *b, at.spmm(g));
            }
            LayerNormRow { a, eps } => {
                let x = self.value(*a);
                let y = self.value(Var(i));
                Self::accum(grads, *a, Matrix::layer_norm_rows_grad(x, y, g, *eps));
            }
            RowL2Norm { a, eps } => {
                let x = self.value(*a);
                let (r, c) = x.shape();
                let mut ga = Matrix::zeros(r, c);
                for row in 0..r {
                    let xr = x.row(row);
                    let gr = g.row(row);
                    let norm = xr.iter().map(|v| v * v).sum::<f32>().sqrt();
                    let out = ga.row_mut(row);
                    if norm <= *eps {
                        out.copy_from_slice(gr);
                    } else {
                        let dot: f32 = xr.iter().zip(gr).map(|(&x, &g)| x * g).sum();
                        let n3 = norm * norm * norm;
                        for k in 0..c {
                            out[k] = gr[k] / norm - xr[k] * dot / n3;
                        }
                    }
                }
                Self::accum(grads, *a, ga);
            }
            RowDots(a, b) => {
                Self::accum(grads, *a, self.value(*b).mul_col_broadcast(g));
                Self::accum(grads, *b, self.value(*a).mul_col_broadcast(g));
            }
            SoftmaxRows(a) => {
                let y = self.value(Var(i));
                let (r, c) = y.shape();
                let mut ga = Matrix::zeros(r, c);
                for row in 0..r {
                    softmax_backward(y.row(row), g.row(row), ga.row_mut(row));
                }
                Self::accum(grads, *a, ga);
            }
            SegmentSoftmax { logits, seg } => {
                let y = self.value(Var(i));
                let e = y.rows();
                let mut ga = Matrix::zeros(e, 1);
                for n in 0..seg.len() - 1 {
                    let (lo, hi) = (seg[n], seg[n + 1]);
                    let ys: Vec<f32> = (lo..hi).map(|e| y[(e, 0)]).collect();
                    let gs: Vec<f32> = (lo..hi).map(|e| g[(e, 0)]).collect();
                    let mut out = vec![0.0; hi - lo];
                    softmax_backward(&ys, &gs, &mut out);
                    for (k, e) in (lo..hi).enumerate() {
                        ga[(e, 0)] = out[k];
                    }
                }
                Self::accum(grads, *logits, ga);
            }
            SegmentWeightedSum { w, v, seg } => {
                let wv = self.value(*w);
                let vv = self.value(*v);
                let e = vv.rows();
                let d = vv.cols();
                let mut gw = Matrix::zeros(e, 1);
                let mut gv = Matrix::zeros(e, d);
                for n in 0..seg.len() - 1 {
                    let gn = g.row(n);
                    for e in seg[n]..seg[n + 1] {
                        let mut dot = 0.0;
                        let we = wv[(e, 0)];
                        let gv_row = gv.row_mut(e);
                        for (k, &gk) in gn.iter().enumerate() {
                            dot += gk * vv[(e, k)];
                            gv_row[k] += we * gk;
                        }
                        gw[(e, 0)] = dot;
                    }
                }
                Self::accum(grads, *w, gw);
                Self::accum(grads, *v, gv);
            }
            Dropout { a, mask } => {
                Self::accum(grads, *a, g.mul_elem(mask));
            }
        }
    }
}

impl Recorder for Tape {
    // ---- leaves ---------------------------------------------------------

    fn constant(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf { param: None }, value)
    }

    fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        // PLAN: leaves copy the parameter so the optimizer can update the
        // ParamSet mid-epoch without aliasing the tape; pooled storage backs
        // the copy and the planner frees it at its last gradient read.
        self.push(Op::Leaf { param: Some(id) }, params.value(id).clone())
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.shape_of(v)
    }

    // ---- elementwise ----------------------------------------------------

    fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(Op::Sub(a, b), v)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul_elem(self.value(b));
        self.push(Op::Mul(a, b), v)
    }

    fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).scale(-1.0);
        self.push(Op::Neg(a), v)
    }

    fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = self.value(a).scale(k);
        self.push(Op::Scale(a, k), v)
    }

    fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        let v = self.value(a).map(|x| x + k);
        self.push(Op::AddScalar(a), v)
    }

    // ---- linear algebra --------------------------------------------------

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    fn spmm_with(&mut self, adj: &Rc<Csr>, adj_t: &Rc<Csr>, b: Var) -> Var {
        assert_eq!(adj.rows(), adj_t.cols(), "spmm_with: adj_t is not adjᵀ (shape)");
        assert_eq!(adj.cols(), adj_t.rows(), "spmm_with: adj_t is not adjᵀ (shape)");
        let v = adj.spmm(self.value(b));
        self.push(Op::Spmm { at: Rc::clone(adj_t), b }, v)
    }

    // ---- activations -----------------------------------------------------

    fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map_weighted(32, stable_sigmoid);
        self.push(Op::Sigmoid(a), v)
    }

    fn tanh(&mut self, a: Var) -> Var {
        // Audited branchless: `f32::tanh` is a polynomial/rational kernel
        // with no data-dependent branching.
        let v = self.value(a).map_weighted(32, f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        // Branchless kernel (see `Matrix::leaky_relu`): the branchy map
        // mispredicted ~half its calls on sign-random activations and was
        // ~30× slower per element than `add`.
        let v = self.value(a).leaky_relu(alpha);
        self.push(Op::LeakyRelu(a, alpha), v)
    }

    fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map_weighted(16, f32::exp);
        self.push(Op::Exp(a), v)
    }

    fn softplus(&mut self, a: Var) -> Var {
        // Audited branchless: `max`/`abs` compile to sign-bit ops, and the
        // `exp`/`ln_1p` pair is branch-free on the value path.
        let v = self.value(a).map_weighted(32, |x| x.max(0.0) + (-x.abs()).exp().ln_1p());
        self.push(Op::Softplus(a), v)
    }

    fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).map_weighted(16, f32::ln);
        self.push(Op::Ln(a), v)
    }

    fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).div_elem(self.value(b));
        self.push(Op::Div(a, b), v)
    }

    fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::sqrt);
        self.push(Op::Sqrt(a), v)
    }

    // ---- broadcasts ------------------------------------------------------

    fn add_row(&mut self, a: Var, row: Var) -> Var {
        let v = self.value(a).add_row_broadcast(self.value(row));
        self.push(Op::AddRow(a, row), v)
    }

    fn mul_row(&mut self, a: Var, row: Var) -> Var {
        let v = self.value(a).mul_row_broadcast(self.value(row));
        self.push(Op::MulRow(a, row), v)
    }

    fn mul_col(&mut self, a: Var, col: Var) -> Var {
        let v = self.value(a).mul_col_broadcast(self.value(col));
        self.push(Op::MulCol(a, col), v)
    }

    // ---- reductions ------------------------------------------------------

    fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::full(1, 1, self.value(a).sum());
        self.push(Op::SumAll(a), v)
    }

    fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::full(1, 1, self.value(a).mean());
        self.push(Op::MeanAll(a), v)
    }

    fn row_sum(&mut self, a: Var) -> Var {
        let v = self.value(a).row_sums();
        self.push(Op::RowSum(a), v)
    }

    fn col_mean(&mut self, a: Var) -> Var {
        let rows = self.value(a).rows().max(1) as f32;
        let v = self.value(a).col_sums().scale(1.0 / rows);
        self.push(Op::ColMean(a), v)
    }

    // ---- structure -------------------------------------------------------

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Matrix::concat_cols(&mats);
        self.push(Op::ConcatCols(parts.to_vec()), v)
    }

    fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let v = self.value(a).slice_cols(start, end);
        self.push(Op::SliceCols { a, start, end }, v)
    }

    fn gather(&mut self, a: Var, idx: Rc<Vec<usize>>) -> Var {
        let v = self.value(a).gather_rows(&idx);
        self.push(Op::Gather { a, idx }, v)
    }

    // ---- normalizers -----------------------------------------------------

    fn layer_norm_rows(&mut self, a: Var, eps: f32) -> Var {
        let v = self.value(a).layer_norm_rows(eps);
        self.push(Op::LayerNormRow { a, eps }, v)
    }

    fn l2_normalize_rows(&mut self, a: Var, eps: f32) -> Var {
        let v = self.value(a).l2_normalize_rows(eps);
        self.push(Op::RowL2Norm { a, eps }, v)
    }

    fn row_dots(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).row_dots(self.value(b));
        self.push(Op::RowDots(a, b), v)
    }

    fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_rows();
        self.push(Op::SoftmaxRows(a), v)
    }

    // ---- segment (edge-attention) ops ------------------------------------

    fn segment_softmax(&mut self, logits: Var, seg: Rc<Vec<usize>>) -> Var {
        let x = self.value(logits);
        assert_eq!(x.cols(), 1, "segment_softmax: logits must be E × 1");
        assert_eq!(
            *seg.last().expect("segment pointer must be non-empty"),
            x.rows(),
            "segment_softmax: pointer does not cover all edges"
        );
        // PLAN: per-segment softmax normalizes a copy in place; the copy is
        // the node value and is pooled/freed like any other.
        let mut v = x.clone();
        for n in 0..seg.len() - 1 {
            let (lo, hi) = (seg[n], seg[n + 1]);
            softmax_slice(&mut v.as_mut_slice()[lo..hi]);
        }
        self.push(Op::SegmentSoftmax { logits, seg }, v)
    }

    fn segment_weighted_sum(&mut self, w: Var, v: Var, seg: Rc<Vec<usize>>) -> Var {
        let wv = self.value(w);
        let vv = self.value(v);
        assert_eq!(wv.cols(), 1, "segment_weighted_sum: weights must be E × 1");
        assert_eq!(wv.rows(), vv.rows(), "segment_weighted_sum: weight/value mismatch");
        assert_eq!(
            *seg.last().expect("segment pointer must be non-empty"),
            vv.rows(),
            "segment_weighted_sum: pointer does not cover all edges"
        );
        let n = seg.len() - 1;
        let d = vv.cols();
        let mut out = Matrix::zeros(n, d);
        for i in 0..n {
            for e in seg[i]..seg[i + 1] {
                let we = wv[(e, 0)];
                for (o, &x) in out.row_mut(i).iter_mut().zip(vv.row(e)) {
                    *o += we * x;
                }
            }
        }
        self.push(Op::SegmentWeightedSum { w, v, seg }, out)
    }

    // ---- misc ------------------------------------------------------------

    fn dropout_mask(&mut self, a: Var, mask: Matrix) -> Var {
        assert_eq!(self.value(a).shape(), mask.shape(), "dropout: mask shape mismatch");
        let v = self.value(a).mul_elem(&mask);
        self.push(Op::Dropout { a, mask }, v)
    }
}

/// Softmax Jacobian-vector product: `dx = s ⊙ (g − ⟨g, s⟩)`.
fn softmax_backward(s: &[f32], g: &[f32], out: &mut [f32]) {
    let dot: f32 = s.iter().zip(g).map(|(&s, &g)| s * g).sum();
    for k in 0..s.len() {
        out[k] = s[k] * (g[k] - dot);
    }
}

fn softmax_slice(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in xs {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_are_recorded() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = t.constant(Matrix::row_vector(&[3.0, 4.0]));
        let c = t.add(a, b);
        assert_eq!(t.value(c).as_slice(), &[4.0, 6.0]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = mean(2 * (a + a)) = 4 * mean(a); d/da = 4/len
        let mut t = Tape::new();
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        let s = t.add(a, a);
        let s2 = t.scale(s, 2.0);
        let loss = t.mean_all(s2);
        let g = t.grad_of(loss, a).expect("gradient should flow to a");
        assert_eq!(g.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn matmul_gradients_have_right_shapes() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_fn(2, 3, |r, c| (r + c) as f32));
        let b = t.constant(Matrix::from_fn(3, 4, |r, c| (r * c) as f32 * 0.1));
        let p = t.matmul(a, b);
        let loss = t.sum_all(p);
        let grads = t.backward(loss);
        assert_eq!(grads[0].as_ref().map(Matrix::shape), Some((2, 3)));
        assert_eq!(grads[1].as_ref().map(Matrix::shape), Some((3, 4)));
    }

    #[test]
    fn bpr_loss_decreases_with_margin() {
        let mut t = Tape::new();
        let pos = t.constant(Matrix::col_vector(&[5.0]));
        let neg = t.constant(Matrix::col_vector(&[0.0]));
        let l_good = t.bpr_loss(pos, neg);
        let pos2 = t.constant(Matrix::col_vector(&[0.0]));
        let neg2 = t.constant(Matrix::col_vector(&[5.0]));
        let l_bad = t.bpr_loss(pos2, neg2);
        assert!(t.value(l_good)[(0, 0)] < t.value(l_bad)[(0, 0)]);
    }

    #[test]
    fn segment_softmax_per_segment_sums_to_one() {
        let mut t = Tape::new();
        let logits = t.constant(Matrix::col_vector(&[1.0, 2.0, 3.0, -1.0, 0.5]));
        let seg = Rc::new(vec![0usize, 2, 2, 5]); // segments of size 2, 0, 3
        let s = t.segment_softmax(logits, seg);
        let v = t.value(s);
        assert!((v[(0, 0)] + v[(1, 0)] - 1.0).abs() < 1e-5);
        assert!((v[(2, 0)] + v[(3, 0)] + v[(4, 0)] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn segment_weighted_sum_aggregates() {
        let mut t = Tape::new();
        let w = t.constant(Matrix::col_vector(&[0.5, 0.5, 2.0]));
        let v = t.constant(Matrix::from_vec(3, 2, vec![2.0, 0.0, 4.0, 2.0, 1.0, 1.0]));
        let seg = Rc::new(vec![0usize, 2, 3]);
        let out = t.segment_weighted_sum(w, v, seg);
        assert_eq!(t.value(out).row(0), &[3.0, 1.0]);
        assert_eq!(t.value(out).row(1), &[2.0, 2.0]);
    }

    #[test]
    fn param_grads_accumulate_into_set() {
        let mut params = ParamSet::new();
        let p = params.add("p", Matrix::row_vector(&[1.0, -1.0]));
        let mut t = Tape::new();
        let v = t.param(&params, p);
        let sq = t.mul(v, v);
        let loss = t.sum_all(sq);
        params.zero_grads();
        let l = t.backward_into(loss, &mut params);
        assert!((l - 2.0).abs() < 1e-6);
        // d/dv Σ v² = 2v
        assert_eq!(params.grad(p).as_slice(), &[2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1×1 scalar")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        t.backward(a);
    }

    #[test]
    fn observed_tape_profiles_ops_under_meta_names() {
        dgnn_obs::reset();
        dgnn_obs::enable();
        let mut params = ParamSet::new();
        let p = params.add("w", Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.1));
        let mut t = Tape::new();
        let v = t.param(&params, p);
        let vt = t.transpose(v);
        let prod = t.matmul(v, vt);
        let loss = t.sum_all(prod);
        params.zero_grads();
        let _ = t.backward_into(loss, &mut params);
        dgnn_obs::disable();
        let snap = dgnn_obs::snapshot();
        dgnn_obs::reset();
        for kind in snap.ops.keys() {
            assert!(
                crate::meta::ALL_OPS.contains(&kind.as_str()),
                "op kind {kind} is not a meta::ALL_OPS name"
            );
        }
        let mm = &snap.ops["matmul"];
        assert_eq!((mm.forward.calls, mm.backward.calls), (1, 1));
        assert_eq!(snap.ops["param"].forward.calls, 1);
        assert!(snap.ops["sum_all"].backward.calls == 1);
    }

    #[test]
    fn unobserved_tape_records_no_profile() {
        dgnn_obs::reset();
        let mut t = Tape::new(); // built while disabled → never observed
        dgnn_obs::enable();
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        let s = t.add(a, a);
        let loss = t.mean_all(s);
        let _ = t.backward(loss);
        dgnn_obs::disable();
        let snap = dgnn_obs::snapshot();
        dgnn_obs::reset();
        assert!(snap.ops.is_empty(), "tape built while disabled must not profile");
    }

    #[test]
    fn grad_is_none_where_no_flow() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::full(1, 1, 1.0));
        let b = t.constant(Matrix::full(1, 1, 2.0)); // unused
        let loss = t.sum_all(a);
        assert!(t.grad_of(loss, b).is_none());
    }
}
