//! Row-major dense `f32` matrix and its kernels.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::pool;

/// A row-major dense matrix of `f32`.
///
/// All shapes are checked with assertions; shape errors in a GNN are
/// programming errors, not recoverable conditions, so panicking with a
/// precise message is the right contract (it mirrors what `ndarray` and
/// `nalgebra` do for mismatched dimensions).
///
/// Storage comes from the thread's [`crate::BufferPool`] when one is
/// installed (see [`crate::recycle`]); otherwise from the heap. Either way
/// the contents a constructor produces are identical.
#[derive(PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Self { rows: self.rows, cols: self.cols, data: pool::alloc_copied(&self.data) }
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        // With a pool installed every dropped matrix retires its storage for
        // reuse; with none installed this is an ordinary heap free.
        pool::recycle_vec(std::mem::take(&mut self.data));
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{})", self.rows, self.cols)?;
        let max_rows = 6.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:+.4}")).collect();
            writeln!(f, "  [{}{}]", shown.join(", "), if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: pool::alloc_zeroed(rows * cols) }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: pool::alloc_filled(rows * cols, value) }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = pool::alloc_overwritten(rows * cols);
        for r in 0..rows {
            for (c, slot) in data[r * cols..(r + 1) * cols].iter_mut().enumerate() {
                *slot = f(r, c);
            }
        }
        Self { rows, cols, data }
    }

    /// Consumes the matrix and returns its backing storage (used by
    /// [`crate::recycle`] to retire buffers into the installed pool).
    pub fn into_raw_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Creates a `1 × n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n × 1` column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Matrix product `self · rhs`.
    ///
    /// Uses the cache-friendly i-k-j loop order so the inner loop streams
    /// over contiguous rows of both `rhs` and the output.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} · {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: {}x{}ᵀ · {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let n = rhs.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ki * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} · {}x{}ᵀ shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul_elem(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "mul_elem", |a, b| a * b)
    }

    /// Elementwise quotient `self ⊘ rhs`. Division by zero follows IEEE
    /// semantics (±∞/NaN); the static auditor's domain check exists to keep
    /// such divisors out of real graphs.
    pub fn div_elem(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "div_elem", |a, b| a / b)
    }

    fn zip_with(&self, rhs: &Matrix, what: &str, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "{what}: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut data = pool::alloc_overwritten(self.data.len());
        for ((o, &a), &b) in data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = f(a, b);
        }
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += k * rhs` (AXPY).
    pub fn axpy(&mut self, k: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += k * b;
        }
    }

    /// Scaled copy `k * self`.
    pub fn scale(&self, k: f32) -> Matrix {
        self.map(|v| v * k)
    }

    /// In-place scaling `self *= k`.
    pub fn scale_assign(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Entry-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut data = pool::alloc_overwritten(self.data.len());
        for (o, &v) in data.iter_mut().zip(&self.data) {
            *o = f(v);
        }
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds the `1 × cols` row vector `row` to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "add_row_broadcast: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Multiplies every row elementwise by the `1 × cols` row vector `row`.
    pub fn mul_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "mul_row_broadcast: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "mul_row_broadcast: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o *= b;
            }
        }
        out
    }

    /// Multiplies row `i` by the scalar `col[i]` (`col` is `rows × 1`).
    pub fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        assert_eq!(col.cols, 1, "mul_col_broadcast: rhs must be a column vector");
        assert_eq!(col.rows, self.rows, "mul_col_broadcast: height mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let k = col.data[r];
            for o in out.row_mut(r) {
                *o *= k;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries; zero for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// `rows × 1` vector of per-row sums.
    pub fn row_sums(&self) -> Matrix {
        let mut data = pool::alloc_overwritten(self.rows);
        for (r, o) in data.iter_mut().enumerate() {
            *o = self.row(r).iter().sum();
        }
        Matrix { rows: self.rows, cols: 1, data }
    }

    /// `1 × cols` vector of per-column sums.
    pub fn col_sums(&self) -> Matrix {
        let mut data = pool::alloc_zeroed(self.cols);
        for r in 0..self.rows {
            for (acc, &v) in data.iter_mut().zip(self.row(r)) {
                *acc += v;
            }
        }
        Matrix { rows: 1, cols: self.cols, data }
    }

    /// `rows × 1` vector of per-row dot products with the matching row of
    /// `rhs` (i.e. `sum(self ⊙ rhs, axis=1)`).
    pub fn row_dots(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "row_dots: shape mismatch");
        let mut data = pool::alloc_overwritten(self.rows);
        for (r, o) in data.iter_mut().enumerate() {
            *o = self.row(r).iter().zip(rhs.row(r)).map(|(&a, &b)| a * b).sum();
        }
        Matrix { rows: self.rows, cols: 1, data }
    }

    /// Squared Frobenius norm `Σ v²`.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Concatenates matrices left-to-right (all must share a row count).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: need at least one part");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "concat_cols: row count mismatch"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let out_row = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                out_row[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Vertically stacks matrices (all must share a column count).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: need at least one part");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "concat_rows: column count mismatch"
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = pool::alloc_overwritten(rows * cols);
        let mut off = 0;
        for p in parts {
            data[off..off + p.data.len()].copy_from_slice(&p.data);
            off += p.data.len();
        }
        Matrix { rows, cols, data }
    }

    /// Copy of the column range `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols: bad range {start}..{end}");
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// New matrix whose rows are `self.row(idx[i])` (embedding lookup).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < self.rows, "gather_rows: index {r} out of bounds ({} rows)", self.rows);
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Scatter-add: `self.row(idx[i]) += src.row(i)` for every `i`.
    /// Duplicate indices accumulate.
    pub fn scatter_add_rows(&mut self, idx: &[usize], src: &Matrix) {
        assert_eq!(idx.len(), src.rows, "scatter_add_rows: index/src mismatch");
        assert_eq!(self.cols, src.cols, "scatter_add_rows: width mismatch");
        for (i, &r) in idx.iter().enumerate() {
            assert!(r < self.rows, "scatter_add_rows: index {r} out of bounds");
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(src.row(i)) {
                *d += s;
            }
        }
    }

    /// Row-wise L2 normalization; rows with norm below `eps` are left
    /// unchanged (avoids dividing by ~0 for never-touched embeddings).
    pub fn l2_normalize_rows(&self, eps: f32) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > eps {
                for v in row {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// True when every entry is finite (no NaN/∞) — used as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Numerically-stable softmax over a mutable slice.
pub(crate) fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in xs {
            *v /= sum;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn zeros_and_shape() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.len(), 12);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(a[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(2, 2, &[1.5, -2.0, 0.25, 3.0]);
        assert!(approx_eq(&a.matmul(&Matrix::eye(2)), &a, 0.0));
        assert!(approx_eq(&Matrix::eye(2).matmul(&a), &a, 0.0));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[0.5, -1.0, 2.0, 0.0, 1.0, 1.0]);
        assert!(approx_eq(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &[1.0; 12]);
        assert!(approx_eq(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn transpose_twice_roundtrips() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(approx_eq(&a.transpose().transpose(), &a, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul_elem(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        a.axpy(2.0, &m(1, 2, &[3.0, -1.0]));
        assert_eq!(a.as_slice(), &[7.0, -1.0]);
    }

    #[test]
    fn broadcasts() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let row = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&row).as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.mul_row_broadcast(&row).as_slice(), &[10.0, 40.0, 30.0, 80.0]);
        let col = Matrix::col_vector(&[2.0, -1.0]);
        assert_eq!(a.mul_col_broadcast(&col).as_slice(), &[2.0, 4.0, -3.0, -4.0]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
        assert_eq!(a.row_sums().as_slice(), &[6.0, 15.0]);
        assert_eq!(a.col_sums().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sq_norm(), 91.0);
    }

    #[test]
    fn row_dots_matches_manual() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.row_dots(&b).as_slice(), &[17.0, 53.0]);
    }

    #[test]
    fn concat_cols_and_slice_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        assert!(approx_eq(&c.slice_cols(0, 2), &a, 0.0));
        assert!(approx_eq(&c.slice_cols(2, 3), &b, 0.0));
    }

    #[test]
    fn concat_rows_stacks() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_and_scatter_are_adjoint_on_duplicates() {
        let table = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let idx = [2, 0, 2];
        let g = table.gather_rows(&idx);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(2), &[5.0, 6.0]);
        let mut acc = Matrix::zeros(3, 2);
        acc.scatter_add_rows(&idx, &g);
        // Row 2 was gathered twice, so it accumulates twice.
        assert_eq!(acc.row(2), &[10.0, 12.0]);
        assert_eq!(acc.row(0), &[1.0, 2.0]);
        assert_eq!(acc.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let a = m(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        let n = a.l2_normalize_rows(1e-12);
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        // Zero row untouched, not NaN.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_shift_invariant() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[1001.0, 1002.0, 1003.0]);
        let sa = a.softmax_rows();
        let sb = b.softmax_rows();
        assert!((sa.sum() - 1.0).abs() < 1e-5);
        assert!(approx_eq(&sa, &sb, 1e-5));
        assert!(sa.all_finite());
    }

    #[test]
    fn map_and_scale() {
        let a = m(1, 3, &[-1.0, 0.0, 2.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 0.0, 2.0]);
        assert_eq!(a.scale(-2.0).as_slice(), &[2.0, 0.0, -4.0]);
    }
}
