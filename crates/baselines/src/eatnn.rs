//! EATNN (Chen et al., SIGIR 2019): efficient adaptive transfer network.
//!
//! The distinguishing mechanism is *adaptive multi-task transfer*: users
//! carry a shared embedding plus a social-domain embedding, a learned
//! per-user gate decides how much social knowledge transfers into the item
//! domain, and a social link-prediction task is trained jointly with the
//! recommendation task.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_tensor::Init;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Weight of the auxiliary social task in the joint loss.
const SOCIAL_TASK_WEIGHT: f32 = 0.5;

struct State {
    e_shared: ParamId,
    e_social: ParamId,
    e_item: ParamId,
    gate_w: ParamId,
    gate_b: ParamId,
    /// Flattened social ties for auxiliary sampling.
    ties: Vec<(u32, u32)>,
    /// Sorted friend lists for negative rejection.
    friends: Vec<Vec<u32>>,
}

/// Item-domain user representation: shared + gated social transfer.
fn user_repr(st: &State, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let shared = tape.param(params, st.e_shared);
    let social = tape.param(params, st.e_social);
    let gw = tape.param(params, st.gate_w);
    let gb = tape.param(params, st.gate_b);
    let gate_in = tape.matmul(shared, gw);
    let gate_in = tape.add_row(gate_in, gb);
    let gate = tape.sigmoid(gate_in);
    let transferred = tape.mul(gate, social);
    (tape.add(shared, transferred), social)
}

/// Auxiliary social BPR: a user should score true friends above sampled
/// non-friends in the social embedding space.
fn social_loss(st: &State, tape: &mut Tape, social: Var, rng: &mut StdRng, n: usize) -> Option<Var> {
    if st.ties.is_empty() {
        return None;
    }
    let num_users = st.friends.len();
    let mut users = Vec::with_capacity(n);
    let mut pos = Vec::with_capacity(n);
    let mut neg = Vec::with_capacity(n);
    for _ in 0..n {
        let &(a, b) = &st.ties[rng.gen_range(0..st.ties.len())];
        let neg_u = loop {
            let cand = rng.gen_range(0..num_users) as u32;
            if cand != a && st.friends[a as usize].binary_search(&cand).is_err() {
                break cand;
            }
        };
        users.push(a as usize);
        pos.push(b as usize);
        neg.push(neg_u as usize);
    }
    let ue = tape.gather(social, Rc::new(users));
    let pe = tape.gather(social, Rc::new(pos));
    let ne = tape.gather(social, Rc::new(neg));
    let ps = tape.row_dots(ue, pe);
    let ns = tape.row_dots(ue, ne);
    Some(tape.bpr_loss(ps, ns))
}

/// The EATNN recommender.
pub struct Eatnn {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean joint loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Eatnn {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }
}

impl Recommender for Eatnn {
    fn name(&self) -> &str {
        "EATNN"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("EATNN", user, items)
    }
}

impl Trainable for Eatnn {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let d = self.cfg.dim;
        let e_shared =
            params.add("e_shared", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
        let e_social =
            params.add("e_social", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
        let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng));
        let gate_w = params.add("gate_w", Init::XavierUniform.build(d, d, &mut rng));
        let gate_b = params.add("gate_b", dgnn_tensor::Matrix::zeros(1, d));

        let mut ties: Vec<(u32, u32)> = Vec::with_capacity(g.social_ties().len() * 2);
        let mut friends: Vec<Vec<u32>> = vec![Vec::new(); g.num_users()];
        for &(a, b) in g.social_ties() {
            ties.push((a, b));
            ties.push((b, a));
            friends[a as usize].push(b);
            friends[b as usize].push(a);
        }
        for f in &mut friends {
            f.sort_unstable();
        }
        let st = State { e_shared, e_social, e_item, gate_w, gate_b, ties, friends };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let batch = self.cfg.batch_size;
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, rng| {
                let (users, social) = user_repr(&st, tape, params);
                let items = tape.param(params, st.e_item);
                let main = bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples));
                match social_loss(&st, tape, social, rng, batch.min(512)) {
                    Some(aux) => {
                        let aux = tape.scale(aux, SOCIAL_TASK_WEIGHT);
                        tape.add(main, aux)
                    }
                    None => main,
                }
            },
        );

        let mut tape = Tape::new();
        let (users, _) = user_repr(&st, &mut tape, &params);
        let items = tape.param(&params, st.e_item);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn eatnn_beats_random() {
        assert_beats_random(&mut Eatnn::new(quick()));
    }

    #[test]
    fn joint_loss_is_finite_and_decreasing() {
        let data = dgnn_data::tiny(2);
        let mut m = Eatnn::new(quick());
        m.fit(&data, 4);
        assert!(m.loss_history.iter().all(|l| l.is_finite()));
        assert!(m.loss_history.first() > m.loss_history.last());
    }
}
