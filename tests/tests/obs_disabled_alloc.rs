//! Allocation cost proofs: the observability hot path and the kernel
//! sanitizer's dispatch path must not allocate when recording is off, and
//! the always-on serving telemetry (flight recorder, shared registry) must
//! not allocate even when recording is ON — its buffers are fixed at
//! startup. A counting global allocator measures the exact number of heap
//! allocations across a burst of calls.
//!
//! The counter is **per-thread**: a process-wide counter would charge the
//! measuring test for allocations made concurrently by libtest harness
//! threads or sibling tests, which made the old best-of-N retry version of
//! this test flaky. A thread-local counter makes each window exact, so one
//! window with zero retries suffices.
//!
//! This lives in its own test binary because `#[global_allocator]` is a
//! process-wide choice.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    /// Allocations made by the *current* thread. `const`-initialized so
    /// reading it never itself allocates; `try_with` covers TLS teardown.
    static LOCAL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn local_allocs() -> u64 {
    LOCAL_ALLOCS.with(Cell::get)
}

// SAFETY: delegates every operation to the `System` allocator unchanged;
// the only addition is a thread-local counter bump (const-init TLS, so the
// bump itself cannot recurse into the allocator), which cannot violate any
// allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: same layout contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a matching `alloc` on `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_observability_hot_path_never_allocates() {
    dgnn_obs::reset();
    dgnn_obs::disable();

    // Warm up thread-locals outside the measurement window.
    {
        let _g = dgnn_obs::span("warmup");
        dgnn_obs::counter_add("warmup", 1);
        dgnn_obs::hist_record("warmup", 1.0);
        dgnn_obs::record_op("matmul", dgnn_obs::OpPhase::Forward, 1);
    }

    let before = local_allocs();
    for _ in 0..10_000 {
        let _batch = dgnn_obs::span("batch");
        let _fwd = dgnn_obs::span("forward");
        dgnn_obs::counter_add("grad_nonfinite", 1);
        dgnn_obs::gauge_set("lr", 0.01);
        dgnn_obs::hist_record("grad_norm/preclip", 2.5);
        dgnn_obs::record_op("matmul", dgnn_obs::OpPhase::Forward, 120);
        dgnn_obs::record_op("spmm", dgnn_obs::OpPhase::Backward, 80);
    }
    let allocs = local_allocs() - before;
    assert_eq!(allocs, 0, "disabled-mode recording must be allocation-free");

    // The same calls while disabled must also have recorded nothing.
    assert!(dgnn_obs::take_events().is_empty());
    let snap = dgnn_obs::snapshot();
    assert!(snap.counters.is_empty() && snap.histograms.is_empty() && snap.ops.is_empty());
}

#[test]
fn flight_recorder_and_shared_registry_steady_state_never_allocate() {
    use dgnn_obs::{flight_record, FlightKind, FLIGHT_CAPACITY};

    // Warm up outside the window: the first record initializes the ring
    // (one fixed Vec::with_capacity), the per-thread tag TLS, and each
    // registry handle (one Box::leak per name). Everything after that is
    // in-place: ring slots overwrite, histogram buckets are atomics.
    let hist = dgnn_obs::shared::hist("allocfree/h");
    let ctr = dgnn_obs::shared::counter("allocfree/c");
    let gauge = dgnn_obs::shared::gauge("allocfree/g");
    flight_record(FlightKind::Mark, 0, 0);
    hist.record(1.0);
    ctr.add(1);
    gauge.set(1.0);
    let flight_before = dgnn_obs::flight_total();
    let hist_before = hist.count();

    let rounds = FLIGHT_CAPACITY as u64 * 4; // fill the ring, then overwrite
    let before = local_allocs();
    for i in 0..rounds {
        flight_record(FlightKind::Mark, i, i % 7);
        hist.record((i % 97) as f64 + 0.5);
        ctr.add(1);
        gauge.set(i as f64);
    }
    let allocs = local_allocs() - before;
    assert_eq!(allocs, 0, "live telemetry steady state must be allocation-free");

    // The window really recorded: this is the enabled path, not a no-op.
    assert_eq!(dgnn_obs::flight_total() - flight_before, rounds);
    assert_eq!(hist.count() - hist_before, rounds);
}

#[test]
fn rss_read_path_never_allocates_after_warmup() {
    use dgnn_obs::procstat;

    // Warm up outside the window: the first call opens the cached
    // `/proc/self/statm` fd, resolves the page size from auxv, and
    // registers the shared gauge handles (one Box::leak per name).
    if procstat::rss_bytes().is_none() {
        return; // no procfs on this target — nothing to measure
    }
    procstat::publish_rss();

    let before = local_allocs();
    for _ in 0..1_000 {
        let _ = std::hint::black_box(procstat::rss_bytes());
        let _ = std::hint::black_box(procstat::peak_rss_bytes());
        procstat::publish_rss();
    }
    let allocs = local_allocs() - before;
    assert_eq!(allocs, 0, "statm read/publish path must be allocation-free after warmup");
}

#[test]
fn disabled_sanitizer_dispatch_path_never_allocates() {
    use dgnn_tensor::{parallel, sanitize};

    sanitize::set_enabled(false);

    // Warm up: resolve the pool's thread-local settings and run one
    // dispatch so nothing lazy remains inside the window. The output
    // buffer is preallocated; the kernel body writes in place.
    let rows = 64usize;
    let mut out = vec![0.0f32; rows];
    parallel::par_row_chunks("map", &mut out, rows, 1, 1, |_| Vec::new(), |range, chunk| {
        for (off, r) in range.enumerate() {
            chunk[off] = r as f32;
        }
    });

    let before = local_allocs();
    for _ in 0..2_000 {
        // With sanitize off, the reads closure must never run (it would
        // allocate a Vec) and no Dispatch may be logged: the only sanitizer
        // cost on this path is one thread-local Cell read.
        parallel::par_row_chunks(
            "map",
            &mut out,
            rows,
            1,
            1,
            |_| vec![sanitize::Access::read(0, 0..rows)],
            |range, chunk| {
                for (off, r) in range.enumerate() {
                    chunk[off] += r as f32;
                }
            },
        );
        sanitize::record_raw("map", 1, rows, |_, r| {
            vec![sanitize::Access::write(sanitize::OUT, r.start..r.end)]
        });
    }
    let allocs = local_allocs() - before;
    assert_eq!(allocs, 0, "disabled sanitizer dispatch path must be allocation-free");
    assert!(sanitize::take_log().is_empty(), "disabled mode must not record dispatches");
}
