//! Static per-op metadata: which forward values each op's backward pass
//! reads.
//!
//! The liveness planner in `dgnn-analysis` must know, for every traced op,
//! whether the reverse pass will read the op's *inputs*, its *output*, or
//! neither — e.g. `matmul` gradients need both inputs, `sigmoid` needs only
//! its own output, and `add` needs nothing beyond the incoming gradient.
//! This table is the single source of truth, kept in `dgnn-autograd` right
//! next to [`crate::Tape`]'s backward implementation so the executor and
//! the planner cannot drift: every entry mirrors one arm of the tape's
//! `backprop_node`.
//!
//! Ops are keyed by the same `&'static str` names the `ShapeTracer` records
//! (the two Recorder implementations share one builder surface, so the
//! names are the graph's portable identity).

/// Which of an op's inputs the backward pass reads as *values* (reading
/// only an input's shape does not count — the tape stores shapes
/// separately, so shape-only uses never pin a buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputReads {
    /// The gradient is computed from the incoming gradient alone.
    None,
    /// Only the first input's value is read (unary activations like
    /// `relu` that differentiate through the pre-activation).
    First,
    /// Every input's value is read (`matmul`, `mul`, `div`, …).
    All,
}

/// Forward values an op's backward pass reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradReads {
    /// Input values read during backward.
    pub inputs: InputReads,
    /// True when the op's own forward output is read during backward
    /// (`sigmoid`/`tanh`-style gradients expressed in terms of `y`).
    pub output: bool,
}

/// Every op name a [`crate::Recorder`] can record, in no particular order.
/// Used by tests to prove the metadata table is total.
pub const ALL_OPS: &[&str] = &[
    "constant",
    "param",
    "add",
    "sub",
    "mul",
    "neg",
    "scale",
    "add_scalar",
    "matmul",
    "transpose",
    "spmm",
    "sigmoid",
    "tanh",
    "leaky_relu",
    "relu",
    "exp",
    "softplus",
    "ln",
    "div",
    "sqrt",
    "add_row",
    "mul_row",
    "mul_col",
    "sum_all",
    "mean_all",
    "row_sum",
    "col_mean",
    "concat_cols",
    "slice_cols",
    "gather",
    "layer_norm_rows",
    "l2_normalize_rows",
    "row_dots",
    "softmax_rows",
    "segment_softmax",
    "segment_weighted_sum",
    "dropout",
];

/// Backward-pass value reads for the op named `op`.
///
/// Unknown names get the fully conservative answer (all inputs + output),
/// which can only over-approximate liveness — a plan built for an unknown
/// op is pessimal, never unsound.
pub fn grad_reads(op: &str) -> GradReads {
    let (inputs, output) = match op {
        // Gradient is a reshape/scale/scatter of the incoming gradient;
        // shapes come from the tape's stored shape table.
        "constant" | "param" | "add" | "sub" | "neg" | "scale" | "add_scalar" | "transpose"
        | "spmm" | "add_row" | "sum_all" | "mean_all" | "row_sum" | "col_mean" | "concat_cols"
        | "slice_cols" | "gather" | "dropout" => (InputReads::None, false),
        // d/dx expressed through the pre-activation value.
        "leaky_relu" | "relu" | "softplus" | "l2_normalize_rows" | "ln" => {
            (InputReads::First, false)
        }
        // d/dx expressed through the op's own output.
        "sigmoid" | "tanh" | "exp" | "softmax_rows" | "segment_softmax" | "sqrt" => {
            (InputReads::None, true)
        }
        // Product rules: every operand appears in some partial.
        "mul" | "matmul" | "mul_row" | "mul_col" | "row_dots" | "segment_weighted_sum"
        | "div" => (InputReads::All, false),
        // LayerNorm reads x (for μ, σ) and its normalized output y.
        "layer_norm_rows" => (InputReads::First, true),
        _ => (InputReads::All, true),
    };
    GradReads { inputs, output }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_total_over_all_ops() {
        for op in ALL_OPS {
            // The fallback arm is for *future* ops; every currently known
            // op must have a deliberate entry. Probe by checking that no
            // known op gets the (All, true) fallback unless it is
            // layer_norm-like — the only intentional (First, true).
            let r = grad_reads(op);
            assert!(
                !(r.inputs == InputReads::All && r.output),
                "op {op} fell through to the conservative fallback — add an explicit entry"
            );
        }
    }

    #[test]
    fn spot_checks_mirror_backprop() {
        assert_eq!(grad_reads("matmul").inputs, InputReads::All);
        assert_eq!(grad_reads("add"), GradReads { inputs: InputReads::None, output: false });
        assert_eq!(grad_reads("sigmoid"), GradReads { inputs: InputReads::None, output: true });
        assert_eq!(grad_reads("layer_norm_rows"), GradReads { inputs: InputReads::First, output: true });
        // Unknown ops are conservative, not unsound.
        assert_eq!(grad_reads("frobnicate"), GradReads { inputs: InputReads::All, output: true });
    }
}
