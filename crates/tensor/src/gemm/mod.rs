//! Packed-panel GEMM subsystem with runtime-dispatched SIMD microkernels.
//!
//! Every dense matmul entry point in [`crate::Matrix`] (`matmul`,
//! `matmul_tn`, `matmul_nt`, `matmul_nt_acc`, the gathered variants) routes
//! through this module unless the legacy scalar backend is selected. The
//! design is the classic two-level packing scheme (tract / BLIS style):
//!
//! * **A panels** — the left operand's rows are packed into `MR`-row
//!   panels laid out column-major *within* the panel: for each inner index
//!   `kk`, the panel stores the `MR` row values contiguously. Rows past the
//!   end of the operand (edge panels) are zero-filled. Packing happens
//!   *per partition* into a dispatcher-provided scratch region, so pool
//!   workers never allocate and the scratch writes are provably disjoint.
//! * **B panels** — the right operand's columns are packed into `NR`-column
//!   panels laid out row-major within the panel: for each `kk`, the `NR`
//!   column values are contiguous. Edge panels zero-fill the missing
//!   columns. B is packed once on the dispatching thread and shared
//!   read-only by every partition.
//! * **Microkernel** — an `MR × NR` register tile accumulates over the full
//!   `k` extent in one pass. Each output element `(i, j)` lives in a fixed
//!   register lane for the whole loop and is a fold over ascending `kk` of
//!   single-rounding operations starting from `0.0` — the accumulation
//!   order depends on neither the panel index, the partition boundaries,
//!   nor the thread count, so parallel results are bit-identical to serial
//!   for every backend. Zero-padded panel lanes contribute exact zeros and
//!   are masked away at store time.
//!
//! Backends:
//!
//! * [`Backend::Avx2`] — AVX2/FMA 8×8 kernel ([`avx2`]), selected when the
//!   CPU reports both features at runtime.
//! * [`Backend::Neon`] — aarch64 NEON 8×8 kernel ([`neon`]).
//! * [`Backend::Generic`] — portable unrolled scalar 8×8 kernel on the
//!   same packed layout ([`generic`]); the always-available packed
//!   fallback.
//! * [`Backend::Scalar`] — the legacy cache-blocked scalar loops in
//!   `dense.rs`, bypassing packing entirely. This is the historical
//!   kernel, bit-for-bit: forcing `DGNN_GEMM=scalar` reproduces exactly
//!   the numbers the repo produced before this module existed.
//!
//! Selection happens once per process from the `DGNN_GEMM` environment
//! variable (`auto` | `avx2` | `neon` | `generic` | `scalar`); benches and
//! tests can override per-thread with [`set_backend`], mirroring the
//! thread-local knobs in [`crate::parallel`]. SIMD backends requested on
//! hardware that lacks them degrade to [`Backend::Generic`] with a
//! one-time warning rather than aborting.

use std::ops::Range;
use std::sync::OnceLock;

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
pub(crate) mod avx2;
pub(crate) mod generic;
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;

/// Rows per packed A panel (microkernel tile height).
pub const MR: usize = 8;
/// Columns per packed B panel (microkernel tile width).
pub const NR: usize = 8;

/// Which GEMM implementation executes the routed matmul entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Packed panels + AVX2/FMA 8×8 microkernel (x86/x86_64 with runtime
    /// `avx2` + `fma` detection).
    Avx2,
    /// Packed panels + NEON 8×8 microkernel (aarch64).
    Neon,
    /// Packed panels + portable unrolled scalar 8×8 microkernel.
    Generic,
    /// Legacy cache-blocked scalar loops; no packing, historical
    /// bit-exact numerics, legacy kernel names in the sanitizer log.
    Scalar,
}

impl Backend {
    /// Stable lowercase name, as accepted by `DGNN_GEMM` and exported by
    /// the profile bench's `gemm/kernel` gauge.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
            Backend::Generic => "generic",
            Backend::Scalar => "scalar",
        }
    }

    /// True when this backend runs the packed-panel pipeline (everything
    /// except the legacy scalar loops).
    pub fn is_packed(self) -> bool {
        !matches!(self, Backend::Scalar)
    }
}

/// Best packed backend the running CPU supports.
fn detect() -> Backend {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Backend::Neon;
        }
    }
    Backend::Generic
}

/// True when `b` can actually execute on this CPU.
fn available(b: Backend) -> bool {
    match b {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Backend::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
        Backend::Generic | Backend::Scalar => true,
        #[allow(unreachable_patterns)] // arms above are cfg-gated per arch
        _ => false,
    }
}

/// Process-wide default, resolved once from `DGNN_GEMM` + feature
/// detection.
fn env_default() -> Backend {
    static DEFAULT: OnceLock<Backend> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let raw = std::env::var("DGNN_GEMM").unwrap_or_default();
        let want = match raw.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => return detect(),
            "avx2" => Backend::Avx2,
            "neon" => Backend::Neon,
            "generic" | "packed" => Backend::Generic,
            "scalar" => Backend::Scalar,
            other => {
                eprintln!("DGNN_GEMM={other:?} is not auto|avx2|neon|generic|scalar; using auto");
                return detect();
            }
        };
        if available(want) {
            want
        } else {
            eprintln!(
                "DGNN_GEMM={} requested but this CPU does not support it; using generic",
                want.name()
            );
            Backend::Generic
        }
    })
}

thread_local! {
    /// Per-thread override used by benches/tests; `None` defers to the
    /// process-wide `DGNN_GEMM` default.
    static OVERRIDE: std::cell::Cell<Option<Backend>> = const { std::cell::Cell::new(None) };
}

/// The backend the current thread's matmul dispatches will use. Workers of
/// the kernel pool never call this: the dispatching thread resolves the
/// backend once and captures it in the partition closure.
pub fn backend() -> Backend {
    OVERRIDE.with(|o| o.get()).unwrap_or_else(env_default)
}

/// Overrides the backend for the current thread (`None` restores the
/// `DGNN_GEMM` default). Unavailable SIMD backends degrade to
/// [`Backend::Generic`] exactly as the env path does, so a forced setting
/// can never dispatch an illegal instruction.
pub fn set_backend(b: Option<Backend>) {
    let checked = b.map(|want| if available(want) { want } else { Backend::Generic });
    OVERRIDE.with(|o| o.set(checked));
}

/// Per-thread counters over the routed GEMM entry points, giving benches a
/// uniform view of *all* matmul work — including fused paths like
/// `matmul_nt_acc` that older accounting lumped into backward rule totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GemmCounters {
    /// Calls routed through the packed pipeline.
    pub packed_calls: u64,
    /// Calls served by the legacy scalar loops.
    pub scalar_calls: u64,
    /// Multiply–accumulate count (`m·n·k` per call), both pipelines.
    pub macs: u64,
}

thread_local! {
    static COUNTERS: std::cell::Cell<GemmCounters> = const {
        std::cell::Cell::new(GemmCounters { packed_calls: 0, scalar_calls: 0, macs: 0 })
    };
}

/// Records one routed GEMM call on the dispatching thread.
pub(crate) fn count_call(packed: bool, m: usize, n: usize, k: usize) {
    COUNTERS.with(|c| {
        let mut v = c.get();
        if packed {
            v.packed_calls += 1;
        } else {
            v.scalar_calls += 1;
        }
        v.macs = v.macs.saturating_add((m as u64).saturating_mul(n as u64).saturating_mul(k as u64));
        c.set(v);
    });
}

/// Snapshot of this thread's GEMM counters.
pub fn counters() -> GemmCounters {
    COUNTERS.with(|c| c.get())
}

/// Zeroes this thread's GEMM counters (bench epochs).
pub fn reset_counters() {
    COUNTERS.with(|c| c.set(GemmCounters::default()));
}

/// Number of `MR`-row panels needed to cover `rows`.
pub(crate) fn row_panels(rows: usize) -> usize {
    rows.div_ceil(MR)
}

/// Length in floats of the packed-A buffer for `rows × k` (zero-padded to
/// whole panels).
pub(crate) fn packed_a_len(rows: usize, k: usize) -> usize {
    row_panels(rows) * MR * k
}

/// Length in floats of the packed-B buffer for `k × n` (zero-padded to
/// whole panels).
pub(crate) fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// Packs rows `rows` of the row-major `m? × k` matrix `a` into `MR`-row
/// column-major panels: `out[panel][kk*MR + i] = a[(rows.start + panel*MR
/// + i) * k + kk]`, zero-filling rows past `rows.end`.
pub(crate) fn pack_a(a: &[f32], k: usize, rows: &Range<usize>, out: &mut [f32]) {
    let span = rows.len();
    let used = packed_a_len(span, k);
    out[..used].fill(0.0);
    for (off, r) in rows.clone().enumerate() {
        let (panel, lane) = (off / MR, off % MR);
        let dst = &mut out[panel * MR * k..(panel + 1) * MR * k];
        for (kk, &v) in a[r * k..(r + 1) * k].iter().enumerate() {
            dst[kk * MR + lane] = v;
        }
    }
}

/// [`pack_a`] through a row-index indirection: virtual row `i` of the left
/// operand is `a.row(idx[i])`.
pub(crate) fn pack_a_gathered(
    a: &[f32],
    idx: &[usize],
    k: usize,
    rows: &Range<usize>,
    out: &mut [f32],
) {
    let span = rows.len();
    let used = packed_a_len(span, k);
    out[..used].fill(0.0);
    for (off, r) in rows.clone().enumerate() {
        let (panel, lane) = (off / MR, off % MR);
        let dst = &mut out[panel * MR * k..(panel + 1) * MR * k];
        let src = idx[r];
        for (kk, &v) in a[src * k..(src + 1) * k].iter().enumerate() {
            dst[kk * MR + lane] = v;
        }
    }
}

/// Packs *columns* `cols` of the row-major `m × c` matrix `a` as the rows
/// of the virtual transpose `aᵀ`: panel lane `i` at inner index `kk` is
/// `a[kk * c + (cols.start + panel*MR + i)]`. Reads are contiguous per
/// `kk` row-slice of `a`.
pub(crate) fn pack_at(a: &[f32], m: usize, c: usize, cols: &Range<usize>, out: &mut [f32]) {
    let span = cols.len();
    let used = packed_a_len(span, m);
    out[..used].fill(0.0);
    for kk in 0..m {
        let a_row = &a[kk * c..(kk + 1) * c];
        for (off, col) in cols.clone().enumerate() {
            let (panel, lane) = (off / MR, off % MR);
            out[panel * MR * m + kk * MR + lane] = a_row[col];
        }
    }
}

/// Packs the row-major `k × n` matrix `b` into `NR`-column row-major
/// panels: `out[panel][kk*NR + j] = b[kk*n + panel*NR + j]`, zero-filling
/// columns past `n`.
pub(crate) fn pack_b(b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    let used = packed_b_len(k, n);
    out[..used].fill(0.0);
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let live = NR.min(n - j0);
        let dst = &mut out[p * NR * k..(p + 1) * NR * k];
        for kk in 0..k {
            dst[kk * NR..kk * NR + live].copy_from_slice(&b[kk * n + j0..kk * n + j0 + live]);
        }
    }
}

/// Packs the *transpose* of the row-major `jn × k` matrix `b` (so the
/// virtual right operand is `bᵀ`, `k × jn`): panel column `j` at inner
/// index `kk` is `b[(j0 + j) * k + kk]`. Reads each `b` row contiguously.
pub(crate) fn pack_bt(b: &[f32], jn: usize, k: usize, out: &mut [f32]) {
    let used = packed_b_len(k, jn);
    out[..used].fill(0.0);
    let panels = jn.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let live = NR.min(jn - j0);
        let dst = &mut out[p * NR * k..(p + 1) * NR * k];
        for j in 0..live {
            for (kk, &v) in b[(j0 + j) * k..(j0 + j + 1) * k].iter().enumerate() {
                dst[kk * NR + j] = v;
            }
        }
    }
}

/// Runs the packed tile loop for one partition: `pa` holds this
/// partition's A panels (`span` live rows), `pb` the shared B panels for
/// all `n` output columns, and `out` the partition's `span × n` row-major
/// output chunk. With `acc` the tile product is *added* onto `out` (one
/// `+` per element after the register fold — the `matmul_nt_acc`
/// contract); otherwise it overwrites.
///
/// Every element's value is a fold over ascending `kk` from `0.0` in a
/// fixed register lane, so the result is independent of panel boundaries,
/// partitioning, and thread count.
pub(crate) fn tile_loop(
    be: Backend,
    pa: &[f32],
    pb: &[f32],
    k: usize,
    n: usize,
    span: usize,
    out: &mut [f32],
    acc: bool,
) {
    debug_assert!(out.len() >= span.saturating_mul(n));
    let rp = row_panels(span);
    let cp = n.div_ceil(NR);
    for pr in 0..rp {
        let rows_live = MR.min(span - pr * MR);
        let pa_panel = &pa[pr * MR * k..(pr + 1) * MR * k];
        for pc in 0..cp {
            let cols_live = NR.min(n - pc * NR);
            let pb_panel = &pb[pc * NR * k..(pc + 1) * NR * k];
            let c0 = pr * MR * n + pc * NR;
            match be {
                #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                // SAFETY: Avx2 is selected only after runtime checks of
                // `avx2`+`fma` (see `detect`/`available`); panel slices
                // carry `MR*k`/`NR*k` floats and the `rows_live×cols_live`
                // corner at `c0` stays inside `out` by the tile geometry.
                Backend::Avx2 => unsafe {
                    avx2::kernel_8x8(
                        k,
                        pa_panel.as_ptr(),
                        pb_panel.as_ptr(),
                        out.as_mut_ptr().add(c0),
                        n,
                        rows_live,
                        cols_live,
                        acc,
                    );
                },
                #[cfg(target_arch = "aarch64")]
                // SAFETY: Neon is selected only when the runtime check
                // `is_aarch64_feature_detected!("neon")` holds; the panel
                // and output bounds argument is identical to the AVX2 arm
                // (full packed panels, masked store stays inside `out`).
                Backend::Neon => unsafe {
                    neon::kernel_8x8(
                        k,
                        pa_panel.as_ptr(),
                        pb_panel.as_ptr(),
                        out.as_mut_ptr().add(c0),
                        n,
                        rows_live,
                        cols_live,
                        acc,
                    );
                },
                // `Scalar` never reaches the tile loop (dense.rs routes it
                // to the legacy kernels first); degrade defensively.
                _ => generic::kernel_8x8(
                    k,
                    pa_panel,
                    pb_panel,
                    out,
                    c0,
                    n,
                    rows_live,
                    cols_live,
                    acc,
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, salt: f32) -> Vec<f32> {
        (0..len).map(|i| ((i * 7 + 3) % 11) as f32 * 0.25 - 1.0 + salt).collect()
    }

    #[test]
    fn pack_a_layout_and_padding() {
        let k = 3;
        let a = seq(5 * k, 0.0);
        let mut out = vec![9.0; packed_a_len(5, k)];
        pack_a(&a, k, &(0..5), &mut out);
        // 5 rows -> one panel of 8 lanes; lane i at inner kk.
        for r in 0..5 {
            for kk in 0..k {
                assert_eq!(out[kk * MR + r], a[r * k + kk]);
            }
        }
        // Padded lanes are exact zeros for every kk.
        for kk in 0..k {
            for lane in 5..MR {
                assert_eq!(out[kk * MR + lane].to_bits(), 0.0f32.to_bits());
            }
        }
    }

    #[test]
    fn pack_b_and_bt_agree_on_transposed_input() {
        let (k, n) = (4, 10);
        let b = seq(k * n, 0.5);
        // bt as an explicit n×k transpose of b.
        let mut bt = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let mut p1 = vec![0.0; packed_b_len(k, n)];
        let mut p2 = vec![0.0; packed_b_len(k, n)];
        pack_b(&b, k, n, &mut p1);
        pack_bt(&bt, n, k, &mut p2);
        assert_eq!(p1, p2, "pack_bt of bᵀ must equal pack_b of b");
    }

    #[test]
    fn pack_at_matches_pack_a_of_transpose() {
        let (m, c) = (6, 5);
        let a = seq(m * c, -0.25);
        let mut at = vec![0.0; c * m];
        for r in 0..m {
            for j in 0..c {
                at[j * m + r] = a[r * c + j];
            }
        }
        let mut p1 = vec![0.0; packed_a_len(c, m)];
        let mut p2 = vec![0.0; packed_a_len(c, m)];
        pack_at(&a, m, c, &(0..c), &mut p1);
        pack_a(&at, m, &(0..c), &mut p2);
        assert_eq!(p1, p2, "pack_at must equal pack_a of the explicit transpose");
    }

    #[test]
    fn generic_tile_loop_matches_naive_product() {
        let (m, k, n) = (11, 5, 9);
        let a = seq(m * k, 0.1);
        let b = seq(k * n, -0.3);
        let mut pa = vec![0.0; packed_a_len(m, k)];
        let mut pb = vec![0.0; packed_b_len(k, n)];
        pack_a(&a, k, &(0..m), &mut pa);
        pack_b(&b, k, n, &mut pb);
        let mut out = vec![0.0; m * n];
        tile_loop(Backend::Generic, &pa, &pb, k, n, m, &mut out, false);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f32;
                for kk in 0..k {
                    want += a[i * k + kk] * b[kk * n + j];
                }
                assert_eq!(out[i * n + j].to_bits(), want.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn k_zero_overwrites_with_zeros_and_acc_preserves() {
        let (m, n) = (3, 4);
        let mut out = vec![7.0; m * n];
        tile_loop(Backend::Generic, &[], &[], 0, n, m, &mut out, false);
        assert!(out.iter().all(|&v| v == 0.0), "k=0 overwrite must zero the chunk");
        let mut out = vec![7.0; m * n];
        tile_loop(Backend::Generic, &[], &[], 0, n, m, &mut out, true);
        assert!(out.iter().all(|&v| v == 7.0), "k=0 accumulate adds 0.0 to each element");
    }

    #[test]
    fn forced_unavailable_backend_degrades_to_generic() {
        // On any one machine at most one SIMD backend is available; the
        // other must degrade. Exercise whichever is foreign here.
        let foreign = if cfg!(target_arch = "aarch64") { Backend::Avx2 } else { Backend::Neon };
        set_backend(Some(foreign));
        assert_eq!(backend(), Backend::Generic);
        set_backend(None);
    }
}
