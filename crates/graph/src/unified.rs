//! The unified (global-index) view of the heterogeneous graph.
//!
//! Users occupy global ids `0..I`, items `I..I+J`, relation nodes
//! `I+J..I+J+R`. This is the indexing the DGNN propagation layers and the
//! homogeneous baselines (NGCF/GCCF "enhanced with diverse context") and
//! HGT operate on.

use dgnn_tensor::{Csr, CsrBuilder};

use crate::hetero::HeteroGraph;

/// Directed edge families of the unified graph, used by type-dependent
/// models (DGNN's per-relation memory banks, HGT's typed projections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeType {
    /// user ← user (social influence).
    SocialToUser,
    /// user ← item (interaction, item side feeding the user).
    ItemToUser,
    /// item ← user (interaction, user side feeding the item).
    UserToItem,
    /// item ← relation node (knowledge feeding the item).
    RelToItem,
    /// relation node ← item (items feeding their relation node).
    ItemToRel,
}

impl EdgeType {
    /// All edge families, in a fixed order (indexable).
    pub const ALL: [EdgeType; 5] = [
        EdgeType::SocialToUser,
        EdgeType::ItemToUser,
        EdgeType::UserToItem,
        EdgeType::RelToItem,
        EdgeType::ItemToRel,
    ];
}

/// Global-index helper over a [`HeteroGraph`].
#[derive(Debug, Clone)]
pub struct UnifiedView {
    num_users: usize,
    num_items: usize,
    num_relations: usize,
}

impl UnifiedView {
    /// Creates the view for a graph.
    pub fn new(g: &HeteroGraph) -> Self {
        Self {
            num_users: g.num_users(),
            num_items: g.num_items(),
            num_relations: g.num_relations(),
        }
    }

    /// Total number of global nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_users + self.num_items + self.num_relations
    }

    /// Global id of user `u`.
    pub fn user(&self, u: usize) -> usize {
        debug_assert!(u < self.num_users);
        u
    }

    /// Global id of item `v`.
    pub fn item(&self, v: usize) -> usize {
        debug_assert!(v < self.num_items);
        self.num_users + v
    }

    /// Global id of relation node `r`.
    pub fn relation(&self, r: usize) -> usize {
        debug_assert!(r < self.num_relations);
        self.num_users + self.num_items + r
    }

    /// Inverse mapping: which family a global id belongs to and its local
    /// index.
    pub fn classify(&self, global: usize) -> (crate::NodeType, usize) {
        if global < self.num_users {
            (crate::NodeType::User, global)
        } else if global < self.num_users + self.num_items {
            (crate::NodeType::Item, global - self.num_users)
        } else {
            assert!(global < self.num_nodes(), "global id {global} out of range");
            (crate::NodeType::Relation, global - self.num_users - self.num_items)
        }
    }
}

impl HeteroGraph {
    /// Builds the symmetric unified adjacency over global indices, with
    /// unit edge weights. `include_social` / `include_knowledge` gate the
    /// `S` and `T` families — this implements the paper's `-S`, `-T`, and
    /// `-ST` relation ablations (Section V-D) at the graph level.
    pub fn unified_adj(&self, include_social: bool, include_knowledge: bool) -> Csr {
        let view = UnifiedView::new(self);
        let n = view.num_nodes();
        let mut b = CsrBuilder::new(n, n);
        for u in 0..self.num_users() {
            for &v in self.items_of(u) {
                b.push(view.user(u), view.item(v), 1.0);
                b.push(view.item(v), view.user(u), 1.0);
            }
        }
        if include_social {
            for &(a, c) in self.social_ties() {
                b.push(view.user(a as usize), view.user(c as usize), 1.0);
                b.push(view.user(c as usize), view.user(a as usize), 1.0);
            }
        }
        if include_knowledge {
            for &(v, r) in self.item_relations() {
                b.push(view.item(v as usize), view.relation(r as usize), 1.0);
                b.push(view.relation(r as usize), view.item(v as usize), 1.0);
            }
        }
        b.build()
    }

    /// Typed directed edge lists `(dst_local, src_local)` per family, in
    /// the fixed [`EdgeType::ALL`] order. Each list is the raw material
    /// for per-type attention (HGT) and per-type memory encoding (DGNN).
    pub fn typed_edges(&self, ty: EdgeType) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        match ty {
            EdgeType::SocialToUser => {
                for u in 0..self.num_users() {
                    for &f in self.friends_of(u) {
                        edges.push((u, f));
                    }
                }
            }
            EdgeType::ItemToUser => {
                for u in 0..self.num_users() {
                    for &v in self.items_of(u) {
                        edges.push((u, v));
                    }
                }
            }
            EdgeType::UserToItem => {
                for v in 0..self.num_items() {
                    for &u in self.users_of(v) {
                        edges.push((v, u));
                    }
                }
            }
            EdgeType::RelToItem => {
                for v in 0..self.num_items() {
                    for &r in self.ir().row_cols(v) {
                        edges.push((v, r));
                    }
                }
            }
            EdgeType::ItemToRel => {
                for r in 0..self.num_relations() {
                    for &v in self.ri().row_cols(r) {
                        edges.push((r, v));
                    }
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeteroGraphBuilder;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new(2, 3, 1);
        b.interaction(0, 0, 0)
            .interaction(1, 2, 0)
            .social_tie(0, 1)
            .item_relation(0, 0)
            .item_relation(2, 0);
        b.build()
    }

    #[test]
    fn global_index_layout() {
        let g = toy();
        let v = UnifiedView::new(&g);
        assert_eq!(v.num_nodes(), 6);
        assert_eq!(v.user(1), 1);
        assert_eq!(v.item(0), 2);
        assert_eq!(v.relation(0), 5);
        assert_eq!(v.classify(1), (crate::NodeType::User, 1));
        assert_eq!(v.classify(4), (crate::NodeType::Item, 2));
        assert_eq!(v.classify(5), (crate::NodeType::Relation, 0));
    }

    #[test]
    fn unified_adj_is_symmetric() {
        let g = toy();
        let a = g.unified_adj(true, true);
        let d = a.to_dense();
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert_eq!(d[(r, c)], d[(c, r)], "asymmetry at ({r},{c})");
            }
        }
        // Y(2) + S(1) + T(2) edges, doubled.
        assert_eq!(a.nnz(), 10);
    }

    #[test]
    fn ablation_flags_drop_edge_families() {
        let g = toy();
        assert_eq!(g.unified_adj(false, true).nnz(), 8); // -S
        assert_eq!(g.unified_adj(true, false).nnz(), 6); // -T
        assert_eq!(g.unified_adj(false, false).nnz(), 4); // -ST
    }

    #[test]
    fn typed_edges_group_by_destination() {
        let g = toy();
        let social = g.typed_edges(EdgeType::SocialToUser);
        assert_eq!(social, vec![(0, 1), (1, 0)]);
        let i2u = g.typed_edges(EdgeType::ItemToUser);
        assert_eq!(i2u, vec![(0, 0), (1, 2)]);
        let u2i = g.typed_edges(EdgeType::UserToItem);
        assert_eq!(u2i, vec![(0, 0), (2, 1)]);
        let r2i = g.typed_edges(EdgeType::RelToItem);
        assert_eq!(r2i, vec![(0, 0), (2, 0)]);
        let i2r = g.typed_edges(EdgeType::ItemToRel);
        assert_eq!(i2r, vec![(0, 0), (0, 2)]);
    }
}
