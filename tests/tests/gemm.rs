//! Packed-GEMM subsystem tests: every routed matmul entry point must be
//! **bit-identical** between serial and parallel execution for every
//! backend (the per-element fold order is fixed in a register lane,
//! independent of partitioning), packed backends must agree with the
//! legacy scalar kernels within a documented relative tolerance, and a
//! full DGNN retrain under `DGNN_GEMM=scalar` must reproduce the
//! historical numbers bit-for-bit.

use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::tiny;
use dgnn_eval::Trainable;
use dgnn_tensor::gemm::{self, Backend};
use dgnn_tensor::parallel;
use dgnn_tensor::Matrix;
use proptest::prelude::*;

const SEED: u64 = 11;

/// Documented agreement bound between a packed backend and the legacy
/// scalar kernels: the two pipelines use different accumulation orders
/// (register-lane fold vs cache-blocked i-k-j), so results differ by
/// rounding only. With `k ≤ 64` and inputs in ±2, a relative error of
/// `1e-4` (against an f64 reference magnitude) is a conservative bound —
/// both pipelines are exact folds of `k` correctly-rounded f32 FMAs/muls.
const PACKED_VS_SCALAR_RTOL: f32 = 1e-4;

/// Runs `f` with the kernel pool pinned to `threads` and the dispatch
/// threshold dropped so tiny shapes still fan out; restores defaults after.
fn with_pool<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    parallel::set_threads(threads);
    parallel::set_min_par_work(if threads > 1 { 1 } else { parallel::DEFAULT_MIN_PAR_WORK });
    let out = f();
    parallel::set_threads(1);
    parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
    out
}

/// Runs `f` with the thread-local GEMM backend forced to `be`, restoring
/// the previously resolved backend afterwards (so calls nest correctly).
/// Forcing an unavailable SIMD backend degrades to Generic, so the sweep
/// below is safe on any host.
fn with_backend<T>(be: Backend, f: impl FnOnce() -> T) -> T {
    let prev = gemm::backend();
    gemm::set_backend(Some(be));
    let out = f();
    gemm::set_backend(Some(prev));
    out
}

/// Backends worth testing on this host: the auto-detected one, the packed
/// portable fallback, and the legacy scalar loops. Deduplicated so each
/// runs once.
fn backends_under_test() -> Vec<Backend> {
    let mut v = vec![with_backend(Backend::Avx2, gemm::backend)];
    for b in [Backend::Neon, Backend::Generic, Backend::Scalar] {
        let got = with_backend(b, gemm::backend);
        if !v.contains(&got) {
            v.push(got);
        }
    }
    v
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x:?} vs {y:?}");
    }
}

fn assert_close(a: &Matrix, b: &Matrix, rtol: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= rtol * scale,
            "{what}: |{x} - {y}| > rtol {rtol} * {scale} at {i}"
        );
    }
}

/// Deterministic pseudo-random matrix (LCG) in roughly ±2.
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) % 1000) as f32 / 250.0 - 2.0
    })
}

fn idx_for(m: usize, table_rows: usize, seed: u64) -> Vec<usize> {
    (0..m).map(|i| (i * 7 + seed as usize) % table_rows).collect()
}

/// All routed entry points at one shape, concatenated for one-shot
/// comparison: `matmul`, `matmul_tn`, `matmul_nt`, `matmul_nt_acc`,
/// `gather_matmul`, `gather_matmul_nt`.
fn all_entry_points(m: usize, k: usize, n: usize, seed: u64) -> Vec<Matrix> {
    let a = mat(m, k, seed ^ 1);
    let b = mat(k, n, seed ^ 2);
    let bt = mat(n, k, seed ^ 3);
    let at = mat(k, m, seed ^ 4); // for tn: (k×m)ᵀ · (k×n)
    let idx = idx_for(m, m.max(1), seed);
    let mut acc = mat(m, n, seed ^ 5);
    acc.matmul_nt_acc(&a, &bt);
    vec![
        a.matmul(&b),
        at.matmul_tn(&b),
        a.matmul_nt(&bt),
        acc,
        a.gather_matmul(&idx, &b),
        a.gather_matmul_nt(&idx, &bt),
    ]
}

#[test]
fn parallel_is_bit_identical_to_serial_for_every_backend() {
    // Shapes chosen to hit full tiles, ragged tails in every dimension,
    // single rows/cols, and k=0.
    let shapes = [
        (8, 8, 8),
        (16, 8, 24),
        (13, 5, 9),
        (1, 1, 1),
        (9, 0, 7),
        (3, 17, 1),
        (256, 8, 8), // the DGNN quick-preset shape
    ];
    for be in backends_under_test() {
        for &(m, k, n) in &shapes {
            let serial = with_backend(be, || with_pool(1, || all_entry_points(m, k, n, 42)));
            for threads in [2, 4] {
                let par =
                    with_backend(be, || with_pool(threads, || all_entry_points(m, k, n, 42)));
                for (s, p) in serial.iter().zip(&par) {
                    assert_bits_eq(s, p, &format!("{be:?} {m}x{k}x{n} threads={threads}"));
                }
            }
        }
    }
}

#[test]
fn packed_backends_match_scalar_within_tolerance() {
    let shapes = [(8, 8, 8), (16, 8, 24), (13, 5, 9), (31, 33, 2), (256, 8, 8)];
    for &(m, k, n) in &shapes {
        let scalar = with_backend(Backend::Scalar, || all_entry_points(m, k, n, 7));
        for be in backends_under_test() {
            if be == Backend::Scalar {
                continue;
            }
            let packed = with_backend(be, || all_entry_points(m, k, n, 7));
            for (op, (s, p)) in scalar.iter().zip(&packed).enumerate() {
                assert_close(
                    s,
                    p,
                    PACKED_VS_SCALAR_RTOL,
                    &format!("{be:?} vs scalar, op {op}, {m}x{k}x{n}"),
                );
            }
        }
    }
}

#[test]
fn forced_scalar_backend_is_bitwise_the_legacy_kernel() {
    // `DGNN_GEMM=scalar` must reproduce the pre-packing numerics exactly:
    // compare the fused entry points against their compositional legacy
    // equivalents, which the original kernels guaranteed bit-identical.
    with_backend(Backend::Scalar, || {
        let (m, k, n) = (23, 9, 14);
        let a = mat(m, k, 91);
        let bt = mat(n, k, 92);
        let mut fused = mat(m, n, 93);
        let mut composed = fused.clone();
        fused.matmul_nt_acc(&a, &bt);
        composed.add_assign(&a.matmul_nt(&bt));
        assert_bits_eq(&fused, &composed, "scalar matmul_nt_acc == add_assign(matmul_nt)");

        let idx = idx_for(17, m, 5);
        let b = mat(k, n, 94);
        assert_bits_eq(
            &a.gather_matmul(&idx, &b),
            &a.gather_rows(&idx).matmul(&b),
            "scalar gather_matmul == gather_rows+matmul",
        );
        assert_bits_eq(
            &a.gather_matmul_nt(&idx, &bt),
            &a.gather_rows(&idx).matmul_nt(&bt),
            "scalar gather_matmul_nt == gather_rows+matmul_nt",
        );
    });
}

#[test]
fn gathered_entry_points_match_their_compositions_bitwise_when_packed() {
    // On a packed backend the gathered variants pack the same rows the
    // explicit gather would produce, so the products are bit-identical to
    // the two-step composition *on the same backend*.
    for be in backends_under_test() {
        with_backend(be, || {
            let (m, k, n) = (19, 6, 11);
            let a = mat(m, k, 61);
            let b = mat(k, n, 62);
            let bt = mat(n, k, 63);
            let idx = idx_for(26, m, 3);
            assert_bits_eq(
                &a.gather_matmul(&idx, &b),
                &a.gather_rows(&idx).matmul(&b),
                &format!("{be:?} gather_matmul == gather_rows+matmul"),
            );
            assert_bits_eq(
                &a.gather_matmul_nt(&idx, &bt),
                &a.gather_rows(&idx).matmul_nt(&bt),
                &format!("{be:?} gather_matmul_nt == gather_rows+matmul_nt"),
            );
        });
    }
}

#[test]
fn nt_acc_matches_temp_then_add_bitwise_on_every_backend() {
    // The fused accumulate performs the product fold in registers and one
    // rounded `+` per element — the same contract as materializing the
    // product then add_assign, on every backend.
    for be in backends_under_test() {
        with_backend(be, || {
            let (m, k, n) = (21, 8, 13);
            let g = mat(m, k, 71);
            let bt = mat(n, k, 72);
            let mut fused = mat(m, n, 73);
            let mut composed = fused.clone();
            fused.matmul_nt_acc(&g, &bt);
            composed.add_assign(&g.matmul_nt(&bt));
            assert_bits_eq(&fused, &composed, &format!("{be:?} nt_acc == temp+add_assign"));
        });
    }
}

#[test]
fn tail_and_degenerate_shapes() {
    // m/n/k straddling the 8×8 tile in every combination, plus empties.
    let edges = [1usize, 7, 8, 9, 15, 16, 17];
    for be in backends_under_test() {
        if be == Backend::Scalar {
            continue; // tails are a packed-pipeline concern
        }
        with_backend(be, || {
            for &m in &edges {
                for &n in &edges {
                    let k = (m + n) % 5; // small k incl. 0
                    let a = mat(m, k, 51);
                    let b = mat(k, n, 52);
                    let got = a.matmul(&b);
                    let want = with_backend(Backend::Scalar, || a.matmul(&b));
                    assert_close(&want, &got, PACKED_VS_SCALAR_RTOL, &format!("{be:?} {m}x{k}x{n}"));
                }
            }
            // k = 0 must yield exact zeros (overwrite semantics).
            let z = mat(9, 0, 53).matmul(&mat(0, 7, 54));
            assert!(z.as_slice().iter().all(|&v| v.to_bits() == 0.0f32.to_bits()));
        });
    }
}

#[test]
fn dgnn_training_is_bit_identical_across_threads_on_the_selected_backend() {
    // The tentpole determinism claim end-to-end: on whatever backend auto
    // selects (AVX2 here on x86_64 CI), a full DGNN retrain is bit-identical
    // at 1/2/4 threads.
    let data = tiny(SEED);
    let config = || DgnnConfig {
        dim: 8,
        layers: 2,
        memory_units: 4,
        epochs: 3,
        batch_size: 256,
        ..Default::default()
    };
    let mut serial = Dgnn::new(config().with_threads(1));
    serial.fit(&data, SEED);
    for threads in [2, 4] {
        let mut par = Dgnn::new(config().with_threads(threads));
        parallel::set_min_par_work(1);
        par.fit(&data, SEED);
        parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
        parallel::set_threads(1);
        assert_eq!(serial.loss_history.len(), par.loss_history.len());
        for (i, (x, y)) in serial.loss_history.iter().zip(&par.loss_history).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "loss[{i}] diverges at {threads} threads");
        }
        assert_bits_eq(
            serial.user_embeddings(),
            par.user_embeddings(),
            &format!("user embeddings, {threads} threads"),
        );
        assert_bits_eq(
            serial.item_embeddings(),
            par.item_embeddings(),
            &format!("item embeddings, {threads} threads"),
        );
    }
}

#[test]
fn dgnn_forced_scalar_retrain_is_bit_identical_across_threads() {
    // The forced-scalar golden retrain: `DGNN_GEMM=scalar` must run the
    // exact legacy kernels (which kept their historical numerics verbatim),
    // and the retrain must be reproducible and bit-identical between a
    // serial run and a 4-thread run, exactly like the pre-packing suite.
    with_backend(Backend::Scalar, || {
        let data = tiny(SEED);
        let config = || DgnnConfig {
            dim: 8,
            layers: 2,
            memory_units: 4,
            epochs: 3,
            batch_size: 256,
            ..Default::default()
        };
        let mut serial = Dgnn::new(config().with_threads(1));
        serial.fit(&data, SEED);

        // Reproducibility: a second scalar serial run is bit-for-bit the same.
        let mut again = Dgnn::new(config().with_threads(1));
        again.fit(&data, SEED);
        for (x, y) in serial.loss_history.iter().zip(&again.loss_history) {
            assert_eq!(x.to_bits(), y.to_bits(), "scalar retrain must be reproducible");
        }

        let mut par = Dgnn::new(config().with_threads(4));
        parallel::set_min_par_work(1);
        par.fit(&data, SEED);
        parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
        parallel::set_threads(1);
        assert_eq!(serial.loss_history.len(), par.loss_history.len());
        for (i, (x, y)) in serial.loss_history.iter().zip(&par.loss_history).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "scalar loss[{i}] diverges at 4 threads");
        }
        assert_bits_eq(serial.user_embeddings(), par.user_embeddings(), "scalar user embeddings");
        assert_bits_eq(serial.item_embeddings(), par.item_embeddings(), "scalar item embeddings");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_parallel_bitwise_and_scalar_tolerance(
        m in 1usize..40,
        k in 0usize..20,
        n in 1usize..24,
        threads in 2usize..5,
        seed in 0u64..1000,
    ) {
        for be in backends_under_test() {
            let serial = with_backend(be, || with_pool(1, || all_entry_points(m, k, n, seed)));
            let par = with_backend(be, || with_pool(threads, || all_entry_points(m, k, n, seed)));
            for (op, (s, p)) in serial.iter().zip(&par).enumerate() {
                prop_assert_eq!(s.shape(), p.shape());
                for (x, y) in s.as_slice().iter().zip(p.as_slice()) {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "{:?} op {} {}x{}x{} threads={} not bit-identical: {} vs {}",
                        be, op, m, k, n, threads, x, y
                    );
                }
            }
        }
        // Cross-backend: packed results stay within the documented
        // tolerance of the legacy scalar kernels.
        let scalar = with_backend(Backend::Scalar, || all_entry_points(m, k, n, seed));
        for be in backends_under_test() {
            if be == Backend::Scalar { continue; }
            let packed = with_backend(be, || all_entry_points(m, k, n, seed));
            for (s, p) in scalar.iter().zip(&packed) {
                for (x, y) in s.as_slice().iter().zip(p.as_slice()) {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    prop_assert!(
                        (x - y).abs() <= PACKED_VS_SCALAR_RTOL * scale,
                        "{:?} vs scalar beyond rtol: {} vs {}", be, x, y
                    );
                }
            }
        }
    }
}
