//! KGAT (Wang et al., KDD 2019): knowledge-graph attention network.
//!
//! The distinguishing mechanism: attentive propagation over the unified
//! user–item–entity graph where each edge family carries a trainable
//! relation embedding, and the attention score
//! `π(h, r, t) = (W_r e_t)ᵀ tanh(W_r e_h + e_r)` decides how much knowledge
//! flows along each triple.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_graph::{EdgeType, UnifiedView};
use dgnn_tensor::Init;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Edges of one family in *global* indices, grouped by destination.
struct FamilyEdges {
    seg: Rc<Vec<usize>>,
    src: Rc<Vec<usize>>,
    dst: Rc<Vec<usize>>,
}

struct State {
    emb: ParamId,
    /// Relation embedding per edge family, `1 × d` each.
    rel_emb: Vec<ParamId>,
    /// Relation transform per family, `d × d`.
    rel_w: Vec<ParamId>,
    families: Vec<FamilyEdges>,
    user_rows: Rc<Vec<usize>>,
    item_rows: Rc<Vec<usize>>,
    num_nodes: usize,
}

/// Groups a family's `(dst, src)` edges by destination over global ids.
fn family_edges(
    g: &dgnn_graph::HeteroGraph,
    view: &UnifiedView,
    ty: EdgeType,
) -> FamilyEdges {
    let to_global = |local: usize, is_src: bool| -> usize {
        match (ty, is_src) {
            (EdgeType::SocialToUser, _) => view.user(local),
            (EdgeType::ItemToUser, true) => view.item(local),
            (EdgeType::ItemToUser, false) => view.user(local),
            (EdgeType::UserToItem, true) => view.user(local),
            (EdgeType::UserToItem, false) => view.item(local),
            (EdgeType::RelToItem, true) => view.relation(local),
            (EdgeType::RelToItem, false) => view.item(local),
            (EdgeType::ItemToRel, true) => view.item(local),
            (EdgeType::ItemToRel, false) => view.relation(local),
        }
    };
    // typed_edges is already grouped and sorted by local destination, and
    // each family maps one node kind through an affine offset, so global
    // destinations are non-decreasing too.
    let edges = g.typed_edges(ty);
    let mut src = Vec::with_capacity(edges.len());
    let mut dst = Vec::with_capacity(edges.len());
    for &(d_local, s_local) in &edges {
        dst.push(to_global(d_local, false));
        src.push(to_global(s_local, true));
    }
    // Segment pointer over every global node (empty segments for nodes
    // without incoming edges of this family).
    let num_nodes = view.num_nodes();
    let mut seg = Vec::with_capacity(num_nodes + 1);
    let mut e = 0usize;
    seg.push(0);
    for node in 0..num_nodes {
        while e < dst.len() && dst[e] == node {
            e += 1;
        }
        seg.push(e);
    }
    FamilyEdges { seg: Rc::new(seg), src: Rc::new(src), dst: Rc::new(dst) }
}

fn forward(st: &State, layers: usize, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let mut h = tape.param(params, st.emb);
    let mut outs = vec![h];
    for _ in 0..layers.max(1) {
        let mut agg: Option<Var> = None;
        for (f, fam) in st.families.iter().enumerate() {
            if fam.src.is_empty() {
                continue;
            }
            let wr = tape.param(params, st.rel_w[f]);
            let er = tape.param(params, st.rel_emb[f]);
            let hw = tape.matmul(h, wr);
            let hs = tape.gather(hw, Rc::clone(&fam.src));
            let ht = tape.gather(hw, Rc::clone(&fam.dst));
            // π(h, r, t) = (W_r e_t)ᵀ tanh(W_r e_h + e_r)
            let key = tape.add_row(hs, er);
            let key = tape.tanh(key);
            let logits = tape.row_dots(ht, key);
            let alpha = tape.segment_softmax(logits, Rc::clone(&fam.seg));
            let msg = tape.segment_weighted_sum(alpha, hs, Rc::clone(&fam.seg));
            agg = Some(match agg {
                Some(a) => tape.add(a, msg),
                None => msg,
            });
        }
        let agg = agg.unwrap_or_else(|| {
            tape.constant(dgnn_tensor::Matrix::zeros(st.num_nodes, tape.value(h).cols()))
        });
        // Bi-interaction-style update, simplified to LeakyReLU(agg) + h.
        let act = tape.leaky_relu(agg, 0.2);
        h = tape.add(act, h);
        outs.push(h);
    }
    let cat = tape.concat_cols(&outs);
    let cat = tape.l2_normalize_rows(cat, 1e-9);
    let users = tape.gather(cat, Rc::clone(&st.user_rows));
    let items = tape.gather(cat, Rc::clone(&st.item_rows));
    (users, items)
}

/// The KGAT recommender.
pub struct Kgat {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Kgat {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }

    /// Final `(user, item)` embeddings (after `fit`; used for the paper's
    /// Figure 9 visualization).
    pub fn embeddings(&self) -> (&dgnn_tensor::Matrix, &dgnn_tensor::Matrix) {
        (&self.scorer.user, &self.scorer.item)
    }
}

impl Recommender for Kgat {
    fn name(&self) -> &str {
        "KGAT"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("KGAT", user, items)
    }
}

impl Trainable for Kgat {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let view = UnifiedView::new(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let d = self.cfg.dim;
        let emb =
            params.add("emb", Init::Uniform(0.1).build(view.num_nodes(), d, &mut rng));
        let mut rel_emb = Vec::new();
        let mut rel_w = Vec::new();
        let mut families = Vec::new();
        for ty in EdgeType::ALL {
            rel_emb.push(params.add(format!("rel_emb/{ty:?}"), Init::Uniform(0.1).build(1, d, &mut rng)));
            rel_w.push(params.add(format!("rel_w/{ty:?}"), Init::XavierUniform.build(d, d, &mut rng)));
            families.push(family_edges(g, &view, ty));
        }
        let st = State {
            emb,
            rel_emb,
            rel_w,
            families,
            user_rows: Rc::new((0..g.num_users()).map(|u| view.user(u)).collect()),
            item_rows: Rc::new((0..g.num_items()).map(|v| view.item(v)).collect()),
            num_nodes: view.num_nodes(),
        };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let layers = self.cfg.layers;
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, _| {
                let (users, items) = forward(&st, layers, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, layers, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn kgat_beats_random() {
        assert_beats_random(&mut Kgat::new(quick()));
    }

    #[test]
    fn family_edges_cover_all_nodes() {
        let data = dgnn_data::tiny(3);
        let view = UnifiedView::new(&data.graph);
        for ty in EdgeType::ALL {
            let fam = family_edges(&data.graph, &view, ty);
            assert_eq!(fam.seg.len(), view.num_nodes() + 1);
            assert_eq!(*fam.seg.last().expect("non-empty"), fam.src.len());
            // Segments are non-decreasing.
            assert!(fam.seg.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
