//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` cannot be fetched. This crate re-implements exactly the
//! API subset the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `seq::SliceRandom::shuffle` — on
//! top of xoshiro256++, a well-studied 64-bit generator. Streams differ
//! from upstream `rand` (which uses ChaCha12 for `StdRng`), but every use
//! in this workspace only needs deterministic, statistically sound draws,
//! not upstream-identical ones.

// The int impls are macro-generated over {u8..u64}; the u64 instantiation
// makes `as $t` a trivial cast, which the workspace lint would flag.
#![allow(trivial_numeric_casts)]

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be drawn uniformly from the full value domain
/// (mirrors `rand::distributions::Standard` sampling via `Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform `f32` in `[0, 1)` from the top 24 bits.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range a value can be drawn uniformly from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * $unit(rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Scale a [0, 1) draw to [lo, hi]: nudge the unit interval
                // so the endpoint is reachable.
                let u = $unit(rng) as $t;
                lo + (hi - lo) * u / (1.0 - <$t>::EPSILON)
            }
        }
    )*};
}
impl_sample_range_float!(f32 => unit_f32, f64 => unit_f64);

/// High-level draw methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// Standard draw over the value's full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (the seeding scheme recommended by its authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities, mirroring `rand::seq`.

    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer if the slice
        /// is shorter), as an iterator of references.
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index vector.
            let n = self.len();
            let take = amount.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..take {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            idx.truncate(take);
            idx.into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
        }
    }
}

pub mod distributions {
    //! Re-exports for `rand::distributions` paths.
    pub use super::{SampleRange, Standard};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f32..0.5);
            assert!((-2.0..0.5).contains(&f));
            let g = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input untouched");
    }
}
