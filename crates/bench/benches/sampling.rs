//! Microbench: BPR triple sampling throughput (the per-batch fixed cost of
//! every training loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgnn_bench::datasets;
use dgnn_data::TrainSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("negative_sampling");
    for ds in datasets() {
        let sampler = TrainSampler::new(&ds.graph);
        group.bench_with_input(
            BenchmarkId::new("batch_2048", &ds.name),
            &sampler,
            |b, sampler| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| black_box(sampler.batch(&mut rng, 2048)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
