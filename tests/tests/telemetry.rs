//! Telemetry gate: the observability layer's quantile math and Prometheus
//! exposition are proptested against oracles, and a live server is scraped
//! to prove `/metrics`, `/stats`, `/health`, and `/debug/flight` answer
//! with valid, internally consistent payloads — including the crash drill:
//! a worker panic must leave a flight-recorder dump on disk and the pool
//! must keep serving.
//!
//! The shared registry is process-global and tests in this binary run
//! concurrently, so every assertion on a `serve/*` series uses `>=` and
//! every synthetic series gets a name no other test touches. Nothing here
//! calls `dgnn_obs::shared::reset()` or `set_live_telemetry(false)` — both
//! would race the live-server tests.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dgnn_obs::export::{
    escape_label_value, parse_prometheus_text, prometheus_text, sanitize_metric_name,
};
use dgnn_obs::percentile::percentile_sorted;
use dgnn_obs::{HistStat, Snapshot, StreamHist};
use dgnn_serve::{Checkpoint, Engine, ServeConfig, Server};
use dgnn_tensor::Matrix;
use proptest::prelude::*;

// ---------------------------------------------------------------- oracles

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The workspace percentile definition against an independently coded
    /// sorted-vector oracle: nearest rank, `round(q·(n−1))`, zero-based.
    #[test]
    fn percentile_matches_sorted_vector_oracle(
        mut v in collection::vec(1e-3f64..1e6, 1..400),
        q in 0.0f64..=1.0,
    ) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = v.len();
        let idx = ((q * (n - 1) as f64).round() as usize).min(n - 1);
        prop_assert_eq!(percentile_sorted(&v, q), v[idx]);
    }

    /// The streaming histogram's quantile estimate stays within one
    /// geometric half-bucket of the true nearest-rank sample: buckets are
    /// `2^e·(1+s/8)` wide, worst ratio 9/8, so the midpoint estimate is
    /// off by at most `sqrt(9/8) ≈ 1.0607` in either direction for values
    /// inside the honest bucket range.
    #[test]
    fn streamhist_quantile_has_bounded_relative_error(
        mut v in collection::vec(1e-3f64..1e6, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let mut h = StreamHist::new();
        for &x in &v {
            h.record(x);
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let truth = percentile_sorted(&v, q);
        let est = h.quantile(q);
        let ratio = est / truth;
        prop_assert!(
            (0.94..=1.062).contains(&ratio),
            "estimate {est} vs true {truth} (ratio {ratio}) escaped the bucket bound"
        );
    }

    /// Render → parse round-trip over arbitrary registry contents: every
    /// series comes back, histogram bucket counts are cumulative and end
    /// at `+Inf == _count`, and `_sum` survives exactly.
    #[test]
    fn prometheus_exposition_round_trips_through_the_parser(
        counter in 0u64..1_000_000,
        gauge in -1e9f64..1e9,
        samples in collection::vec(1e-3f64..1e6, 1..200),
    ) {
        let mut h = StreamHist::new();
        for &x in &samples {
            h.record(x);
        }
        let mut snap = Snapshot::default();
        snap.counters.insert("telemetry_prop/c".to_string(), counter);
        snap.gauges.insert("telemetry_prop/g".to_string(), gauge);
        snap.histograms.insert("telemetry_prop/h".to_string(), h.stat());
        let mut hists = BTreeMap::new();
        hists.insert("telemetry_prop/h".to_string(), h.clone());

        let text = prometheus_text(&snap, &hists);
        let parsed = parse_prometheus_text(&text).unwrap();
        let find = |name: &str| -> Vec<&dgnn_obs::export::PromSample> {
            parsed.iter().filter(|s| s.name == name).collect()
        };

        prop_assert_eq!(find("telemetry_prop_c")[0].value, counter as f64);
        prop_assert_eq!(find("telemetry_prop_g")[0].value, gauge);
        prop_assert_eq!(find("telemetry_prop_h_count")[0].value, samples.len() as f64);
        let sum = find("telemetry_prop_h_sum")[0].value;
        prop_assert!((sum - h.stat().sum).abs() <= 1e-9 * h.stat().sum.abs().max(1.0));

        let buckets = find("telemetry_prop_h_bucket");
        prop_assert!(!buckets.is_empty(), "histogram exported no buckets");
        let mut prev = 0.0;
        for b in &buckets {
            prop_assert!(b.label("le").is_some(), "bucket without le label");
            prop_assert!(b.value >= prev, "bucket counts must be cumulative");
            prev = b.value;
        }
        prop_assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        prop_assert_eq!(buckets.last().unwrap().value, samples.len() as f64);
    }
}

#[test]
fn exposition_helpers_sanitize_and_escape() {
    assert_eq!(sanitize_metric_name("serve/latency_ms"), "serve_latency_ms");
    assert_eq!(sanitize_metric_name("9lives"), "_9lives");
    assert_eq!(sanitize_metric_name("grad norm/pre-clip"), "grad_norm_pre_clip");
    assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");

    // A HistStat with no full StreamHist exports as a summary, not a
    // histogram — the parser must still accept it.
    let mut snap = Snapshot::default();
    snap.histograms.insert(
        "telemetry_prop/stat_only".to_string(),
        HistStat { count: 3, sum: 6.0, min: 1.0, max: 3.0 },
    );
    let text = prometheus_text(&snap, &BTreeMap::new());
    assert!(text.contains("# TYPE telemetry_prop_stat_only summary"), "{text}");
    let parsed = parse_prometheus_text(&text).unwrap();
    assert!(parsed.iter().any(|s| s.name == "telemetry_prop_stat_only_count" && s.value == 3.0));
}

// ------------------------------------------------------------ live server

/// 4 users × 6 items — the same hand-made checkpoint the HTTP tests use.
fn test_engine() -> Engine {
    let mut ckpt = Checkpoint::new();
    ckpt.set_meta("model", "telemetry-test");
    let user = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.5]);
    let item =
        Matrix::from_vec(6, 2, vec![0.9, 0.1, 0.1, 0.9, 0.5, 0.5, 0.2, 0.3, 0.8, 0.2, 0.0, 0.0]);
    ckpt.push_matrix("final/user", &user);
    ckpt.push_matrix("final/item", &item);
    Engine::from_checkpoint(&ckpt).unwrap()
}

/// One exchange that tolerates the server dying mid-response (the crash
/// drill closes the socket without answering).
fn raw_get(addr: SocketAddr, target: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes()).ok();
    s.shutdown(std::net::Shutdown::Write).ok();
    let mut raw = String::new();
    s.read_to_string(&mut raw).ok();
    raw
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let raw = raw_get(addr, target);
    let status = raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn live_scrape_endpoints_are_valid_and_consistent() {
    let server = Server::start(test_engine(), ServeConfig::default()).unwrap();
    let addr = server.addr();
    let n = 20;
    for r in 0..n {
        let (status, _) = get(addr, &format!("/recommend?user={}&k=3", r % 4));
        assert_eq!(status, 200);
    }

    // /metrics: parses as Prometheus text; the request phases recorded by
    // this test are visible; bucket counts are cumulative.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200, "metrics scrape failed: {body:?}");
    let parsed = parse_prometheus_text(&body).unwrap_or_else(|e| panic!("invalid /metrics: {e}"));
    let value = |name: &str| parsed.iter().find(|s| s.name == name).map(|s| s.value);
    assert!(value("serve_latency_ms_count").unwrap_or(0.0) >= n as f64, "latency count low");
    for phase in ["parse", "queue_wait", "batch_assembly", "engine", "write"] {
        let name = format!("serve_phase_{phase}_ms_count");
        assert!(value(&name).unwrap_or(0.0) >= n as f64, "missing phase series {name}");
    }
    let buckets: Vec<f64> = parsed
        .iter()
        .filter(|s| s.name == "serve_latency_ms_bucket")
        .map(|s| s.value)
        .collect();
    assert!(!buckets.is_empty(), "no latency buckets exported");
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets not cumulative: {buckets:?}");

    // /stats: the JSON snapshot carries the same histogram names.
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    for key in ["\"histograms\"", "serve/latency_ms", "serve/phase/engine_ms"] {
        assert!(body.contains(key), "/stats missing {key}: {body:?}");
    }

    // /health: enriched liveness fields.
    let (status, body) = get(addr, "/health");
    assert_eq!(status, 200);
    for key in ["\"uptime_secs\":", "\"requests\":", "\"ready\":true"] {
        assert!(body.contains(key), "/health missing {key}: {body:?}");
    }

    // /debug/flight: JSONL, one well-formed event per line, and the
    // request traffic above left request/batch events in the ring.
    let (status, body) = get(addr, "/debug/flight");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "flight ring empty after traffic");
    for l in &lines {
        assert!(l.starts_with("{\"t_ns\":") && l.contains("\"kind\":"), "bad flight line {l:?}");
    }
    assert!(lines.iter().any(|l| l.contains("\"kind\":\"request_done\"")), "no request events");

    server.shutdown();
}

#[test]
fn worker_panic_dumps_the_flight_recorder_and_pool_survives() {
    let dump = std::env::temp_dir().join(format!("dgnn_flight_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&dump);
    let cfg = ServeConfig {
        debug_panic: true,
        flight_dump: Some(dump.clone()),
        ..ServeConfig::default()
    };
    let server = Server::start(test_engine(), cfg).unwrap();
    let addr = server.addr();

    let (status, _) = get(addr, "/recommend?user=1&k=2");
    assert_eq!(status, 200);

    // The drill route panics the worker mid-request: no response comes
    // back, and the Drop guard writes the dump on the way down.
    let raw = raw_get(addr, "/debug/panic");
    assert!(raw.is_empty() || !raw.starts_with("HTTP/1.1 200"), "drill answered 200: {raw:?}");

    let mut contents = String::new();
    for _ in 0..100 {
        if let Ok(c) = std::fs::read_to_string(&dump) {
            if !c.is_empty() {
                contents = c;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(!contents.is_empty(), "no flight dump appeared at {}", dump.display());
    for l in contents.lines() {
        assert!(l.starts_with("{\"t_ns\":"), "bad dump line {l:?}");
    }
    assert!(contents.contains("\"kind\":\"panic\""), "dump lacks the panic event: {contents}");
    let _ = std::fs::remove_file(&dump);

    // Three of the four workers remain; the pool keeps answering.
    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200, "pool died with the panicking worker");
    let (status, _) = get(addr, "/recommend?user=0&k=1");
    assert_eq!(status, 200, "recommendations broken after the crash drill");

    server.shutdown();
}

#[test]
fn debug_panic_route_is_off_by_default() {
    let server = Server::start(test_engine(), ServeConfig::default()).unwrap();
    let addr = server.addr();
    let (status, body) = get(addr, "/debug/panic");
    assert_eq!(status, 404, "drill route must be gated off by default: {body:?}");
    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200);
    server.shutdown();
}
