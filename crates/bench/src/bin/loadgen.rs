//! **Serving load harness**: train → checkpoint → serve → measure.
//!
//! Trains a quick DGNN on the tiny dataset, saves a checkpoint, boots the
//! `dgnn-serve` HTTP server on a loopback port, and drives closed-loop
//! concurrent clients (each fires its next request as soon as the previous
//! one answers). A malformed-request smoke runs alongside: garbage bytes,
//! unknown routes, bad parameters and unknown users must all come back as
//! well-formed JSON 4xx — never a dropped worker. The harness also
//! micro-measures the heap-based partial top-K kernel against a full
//! per-row sort (the selection strategy `dgnn-eval` used to pay for), and
//! cross-checks one served response against a direct engine query.
//!
//! Metrics flow through `dgnn-obs`: latency histograms plus
//! `serve/latency_ms_{p50,p95,p99}`, `serve/qps`, `serve/batch_size_mean`
//! gauges, serialized by the same `snapshot_to_json` path as
//! `BENCH_profile.json`. On top of that the harness validates the live
//! telemetry endpoints mid-load (`/metrics` must parse as Prometheus
//! text, `/stats` as the JSON snapshot, `/debug/flight` as JSONL), folds
//! a **phase-attribution report** into the snapshot (p50/p99 per serving
//! phase plus each phase group's share of summed p99 —
//! `serve/attribution/{queue,compute,write}_share_p99`), and measures the
//! overhead of live telemetry by replaying load against a fresh server
//! with the process-shared instruments toggled on/off in round-robin
//! (rotating start, best-of — the same drift defense as the profile
//! gates), published as `serve/obs_overhead_ratio`.
//!
//! Clients draw users from a seeded Zipf(θ) distribution
//! ([`dgnn_bench::zipf`]) — head-heavy like real recommendation traffic —
//! instead of striding uniformly over the user space.
//!
//! ```text
//! loadgen                   run and write BENCH_serve.json + results/dgnn.ckpt
//! loadgen --check PATH      no artifacts; exit 1 on zero successful
//!                           requests, >25% qps regression vs. PATH, or
//!                           obs-enabled qps < 0.9x obs-disabled qps
//! loadgen --scale           run the scale tier instead: sharded store,
//!                           lazy load, 64 Zipf clients -> BENCH_scale.json
//! loadgen --scale --check PATH   scale tier with its regression gates
//! ```
//!
//! qps is machine- and load-dependent; the 25% budget (matching the
//! profile gate) only catches large regressions, not scheduler noise.

use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Instant;

use dgnn_bench::zipf::Zipf;
use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::tiny;
use dgnn_eval::Trainable;
use dgnn_obs::export::snapshot_to_json;
use dgnn_obs::procstat;
use dgnn_serve::{Engine, Query, ServeConfig, Server};
use dgnn_tensor::{top_k_rows, Matrix};

/// Seed shared with the rest of the experiment harness.
const SEED: u64 = 2023;
/// Allowed relative qps drop before `--check` fails.
const REGRESSION_BUDGET: f64 = 0.25;
/// Closed-loop client threads.
const CLIENTS: usize = 6;
/// Requests each client fires.
const REQUESTS_PER_CLIENT: usize = 150;
/// Minimum obs-enabled/obs-disabled qps ratio before `--check` fails:
/// live telemetry may cost at most 10% throughput.
const OBS_OVERHEAD_FLOOR: f64 = 0.9;
/// Interleaved measurement rounds per telemetry configuration.
const OVERHEAD_ROUNDS: usize = 3;
/// Requests per client in each overhead round (shorter than the main
/// run — six rounds must stay cheap).
const OVERHEAD_REQUESTS: usize = 60;
/// The serving phases traced per request, in pipeline order.
const PHASES: [&str; 5] = ["parse", "queue_wait", "batch_assembly", "engine", "write"];
/// Zipf exponent of the serve tier's request distribution: mildly
/// head-heavy, so the tiny user space still gets broad coverage while the
/// hot users repeat (the scale tier uses a steeper θ; see
/// `dgnn_bench::scale_tier`).
const ZIPF_THETA: f64 = 1.1;

fn quick_dgnn() -> DgnnConfig {
    DgnnConfig {
        dim: 8,
        layers: 2,
        memory_units: 4,
        epochs: 4,
        batch_size: 256,
        ..Default::default()
    }
}

/// One blocking HTTP exchange; returns (status, body).
fn http_get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {target} HTTP/1.1\r\nHost: loadgen\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let body = raw.split_once("\r\n\r\n").map_or("", |(_, b)| b).to_string();
    Ok((status, body))
}

/// Sends raw bytes and returns whatever comes back (malformed smoke).
fn http_raw(addr: SocketAddr, payload: &[u8]) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(payload)?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    Ok(raw)
}

/// Closed-loop client load; returns (ok, err, elapsed_secs).
fn drive_load(addr: SocketAddr, num_users: usize, requests_per_client: usize) -> (u64, u64, f64) {
    let started = Instant::now();
    let base = Zipf::new(num_users, ZIPF_THETA, SEED);
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let mut z = base.fork(c as u64);
        // PAR: benchmark client threads generating socket load against the
        // server under test — not kernel work.
        handles.push(std::thread::spawn(move || {
            let (mut ok, mut err) = (0u64, 0u64);
            for r in 0..requests_per_client {
                let user = z.sample();
                let k = 5 + (r % 3) * 5;
                match http_get(addr, &format!("/recommend?user={user}&k={k}")) {
                    Ok((200, _)) => ok += 1,
                    _ => err += 1,
                }
            }
            (ok, err)
        }));
    }
    let (mut ok, mut err) = (0u64, 0u64);
    for h in handles {
        match h.join() {
            Ok((o, e)) => {
                ok += o;
                err += e;
            }
            Err(_) => err += requests_per_client as u64,
        }
    }
    (ok, err, started.elapsed().as_secs_f64())
}

/// Scrapes the live telemetry endpoints while the server is under load
/// and validates each one parses: `/metrics` through the Prometheus
/// text parser, `/stats` as the snapshot JSON, `/debug/flight` as
/// event-per-line JSONL, `/health` with its enriched fields. Returns the
/// number of failed expectations.
fn validate_scrapes(addr: SocketAddr) -> usize {
    let mut failures = 0;
    match http_get(addr, "/metrics") {
        Ok((200, body)) => match dgnn_obs::export::parse_prometheus_text(&body) {
            Ok(samples) => {
                let sample = |name: &str| samples.iter().find(|s| s.name == name);
                let served = sample("serve_latency_ms_count").map_or(0.0, |s| s.value);
                if served <= 0.0 {
                    eprintln!("scrape: /metrics shows no served requests: {samples:?}");
                    failures += 1;
                }
                if sample("serve_phase_queue_wait_ms_count").is_none() {
                    eprintln!("scrape: /metrics is missing the phase histograms");
                    failures += 1;
                }
                let buckets: Vec<f64> = samples
                    .iter()
                    .filter(|s| s.name == "serve_latency_ms_bucket")
                    .map(|s| s.value)
                    .collect();
                if buckets.is_empty() || buckets.windows(2).any(|w| w[0] > w[1]) {
                    eprintln!("scrape: /metrics latency buckets not cumulative: {buckets:?}");
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("scrape: /metrics does not parse: {e}");
                failures += 1;
            }
        },
        other => {
            eprintln!("scrape: /metrics -> {other:?}");
            failures += 1;
        }
    }
    match http_get(addr, "/stats") {
        Ok((200, body))
            if body.contains("\"histograms\"") && body.contains("\"serve/latency_ms\"") => {}
        other => {
            eprintln!("scrape: /stats missing snapshot sections: {other:?}");
            failures += 1;
        }
    }
    match http_get(addr, "/debug/flight") {
        Ok((200, body)) => {
            let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
            if lines.is_empty()
                || lines.iter().any(|l| !l.starts_with("{\"t_ns\":") || !l.contains("\"kind\":"))
            {
                eprintln!("scrape: /debug/flight is not event-per-line JSONL");
                failures += 1;
            }
        }
        other => {
            eprintln!("scrape: /debug/flight -> {other:?}");
            failures += 1;
        }
    }
    match http_get(addr, "/health") {
        Ok((200, body)) if body.contains("\"uptime_secs\":") && body.contains("\"ready\":true") => {
        }
        other => {
            eprintln!("scrape: /health missing enriched fields: {other:?}");
            failures += 1;
        }
    }
    failures
}

/// Measures what live telemetry costs: drives identical load at a fresh
/// server with the process-shared instruments on vs. off, interleaved
/// with a rotating start and scored best-of-[`OVERHEAD_ROUNDS`] per
/// configuration (machine drift hits both alike). Returns
/// `qps_enabled / qps_disabled`; ≥ [`OBS_OVERHEAD_FLOOR`] passes.
fn obs_overhead_ratio(addr: SocketAddr, num_users: usize) -> f64 {
    let mut best = [0.0f64; 2]; // [disabled, enabled]
    for round in 0..OVERHEAD_ROUNDS {
        for leg in 0..2 {
            let enabled = (round + leg) % 2 == 1;
            dgnn_obs::set_live_telemetry(enabled);
            let (ok, err, secs) = drive_load(addr, num_users, OVERHEAD_REQUESTS);
            let qps = (ok + err) as f64 / secs.max(1e-9);
            let slot = usize::from(enabled);
            if qps > best[slot] {
                best[slot] = qps;
            }
        }
    }
    dgnn_obs::set_live_telemetry(true);
    best[1] / best[0].max(1e-9)
}

/// Malformed-request smoke: every probe must yield a well-formed JSON
/// error response (correct 4xx status, `"error"` key) with the server
/// still healthy afterwards. Returns the number of failed expectations.
fn malformed_smoke(addr: SocketAddr) -> usize {
    let mut failures = 0;
    let expect_status = |target: &str, want: u16, failures: &mut usize| match http_get(addr, target)
    {
        Ok((status, body)) if status == want && body.contains("\"error\"") => {}
        Ok((status, body)) => {
            eprintln!("smoke: {target} -> {status} {body:?}, wanted {want} with an error key");
            *failures += 1;
        }
        Err(e) => {
            eprintln!("smoke: {target} -> transport error {e}");
            *failures += 1;
        }
    };
    expect_status("/recommend", 400, &mut failures); // missing user
    expect_status("/recommend?user=abc", 400, &mut failures);
    expect_status("/recommend?user=0&k=0", 400, &mut failures);
    expect_status("/recommend?user=999999", 404, &mut failures); // unknown user
    expect_status("/recommend?user=0&frob=1", 400, &mut failures);
    expect_status("/nope", 404, &mut failures);
    // Raw garbage: not even an HTTP request line.
    match http_raw(addr, b"\x00\x01\x02 garbage \xff\xfe\r\n\r\n") {
        Ok(raw) if raw.starts_with("HTTP/1.1 400") => {}
        Ok(raw) => {
            eprintln!("smoke: garbage bytes -> {raw:?}, wanted a 400");
            failures += 1;
        }
        Err(e) => {
            eprintln!("smoke: garbage bytes -> transport error {e}");
            failures += 1;
        }
    }
    // POST is unsupported and must be rejected cleanly.
    match http_raw(addr, b"POST /recommend HTTP/1.1\r\n\r\n") {
        Ok(raw) if raw.starts_with("HTTP/1.1 400") => {}
        Ok(raw) => {
            eprintln!("smoke: POST -> {raw:?}, wanted a 400");
            failures += 1;
        }
        Err(e) => {
            eprintln!("smoke: POST -> transport error {e}");
            failures += 1;
        }
    }
    // The server must still answer after all of the above.
    match http_get(addr, "/health") {
        Ok((200, _)) => {}
        other => {
            eprintln!("smoke: /health after abuse -> {other:?}");
            failures += 1;
        }
    }
    failures
}

/// Times the heap-based partial top-K against a full per-row sort with the
/// same total order — the selection strategy the eval loop replaced.
/// Returns (topk_secs, sort_secs) over an identical random score matrix.
fn topk_vs_sort(rows: usize, cols: usize, k: usize) -> (f64, f64) {
    let mut state = 0x5EED_0BAD_u64;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        data.push(((state >> 33) as f32) / (u32::MAX as f32));
    }
    let m = Matrix::from_vec(rows, cols, data);
    let t0 = Instant::now();
    let top = top_k_rows(&m, k);
    let topk_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut sorted_first = Vec::new();
    for r in 0..rows {
        let row = m.row(r);
        let mut order: Vec<u32> = (0..cols as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            row[b as usize].total_cmp(&row[a as usize]).then(a.cmp(&b))
        });
        sorted_first.push(order[0]);
    }
    let sort_secs = t1.elapsed().as_secs_f64();
    // Keep the sort honest (no dead-code elimination) and cross-check the
    // kernel: both strategies must agree on every row's best entry.
    for (r, &first) in sorted_first.iter().enumerate() {
        assert_eq!(top.indices(r)[0], first, "top-K vs sort disagree on row {r}");
    }
    (topk_secs, sort_secs)
}

/// Pulls the `serve/qps` gauge out of a baseline snapshot file with the
/// same targeted scan the profile check uses.
fn baseline_qps(json: &str) -> Option<f64> {
    let key = "\"serve/qps\"";
    let tail = &json[json.find(key)? + key.len()..];
    let number: String = tail
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        // PANICS: a trailing --check with no path is an operator error on
        // the command line; there is nothing to recover.
        args.get(i + 1).unwrap_or_else(|| panic!("loadgen: --check requires a path argument"))
    });

    if args.iter().any(|a| a == "--scale") {
        return match dgnn_bench::scale_tier::run(check_path.map(String::as_str)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }

    println!("=== Serving load harness (tiny dataset, quick DGNN) ===");
    let data = tiny(SEED);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, SEED);

    std::fs::create_dir_all("results").expect("loadgen: creating results dir");
    let ckpt_path = std::path::Path::new("results/dgnn.ckpt");
    model.save_checkpoint(&data.name, ckpt_path).expect("loadgen: writing checkpoint");
    let ckpt_bytes = std::fs::metadata(ckpt_path).map(|m| m.len()).unwrap_or(0);

    let engine = Engine::load(ckpt_path).expect("loadgen: loading checkpoint");
    let num_users = engine.num_users();
    // Cross-check one query against the server later.
    let reference = engine
        .recommend(Query { user: 0, k: 10, exclude_seen: false })
        .expect("loadgen: reference query");

    let server = Server::start(engine, ServeConfig::default()).expect("loadgen: binding server");
    let addr = server.addr();
    println!(
        "serving {} users from {} ({ckpt_bytes} bytes) at http://{addr}",
        num_users,
        ckpt_path.display()
    );

    let smoke_failures = malformed_smoke(addr);
    let (ok, err, elapsed) = drive_load(addr, num_users, REQUESTS_PER_CLIENT);
    println!(
        "load: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests -> {ok} ok / {err} err \
         in {elapsed:.2}s ({:.0} qps)",
        (ok + err) as f64 / elapsed.max(1e-9)
    );

    // Telemetry endpoints must serve and parse while the process is warm.
    let scrape_failures = validate_scrapes(addr);

    // Served result == direct engine result for the same query.
    let mut consistency_failures = 0;
    match http_get(addr, "/recommend?user=0&k=10") {
        Ok((200, body)) => {
            let expect_items: Vec<String> = reference.iter().map(|s| s.item.to_string()).collect();
            let needle = format!("\"items\":[{}]", expect_items.join(","));
            if !body.contains(&needle) {
                eprintln!("consistency: served {body:?} does not contain {needle:?}");
                consistency_failures += 1;
            }
        }
        other => {
            eprintln!("consistency: reference request failed: {other:?}");
            consistency_failures += 1;
        }
    }

    let stats = server.stats();
    server.shutdown();

    // Overhead measurement runs against a *fresh* server so its traffic
    // cannot pollute the main run's stats (qps, percentiles).
    let overhead_engine = Engine::load(ckpt_path).expect("loadgen: reloading checkpoint");
    let overhead_server =
        Server::start(overhead_engine, ServeConfig::default()).expect("loadgen: overhead server");
    let obs_overhead = obs_overhead_ratio(overhead_server.addr(), num_users);
    overhead_server.shutdown();
    println!(
        "obs overhead: enabled/disabled qps ratio {obs_overhead:.3} \
         (best of {OVERHEAD_ROUNDS} interleaved rounds per config)"
    );

    let (topk_secs, sort_secs) = topk_vs_sort(256, 4096, 20);
    let speedup = sort_secs / topk_secs.max(1e-9);
    println!(
        "top-K kernel: {:.1} ms vs full sort {:.1} ms on 256x4096 @ k=20 ({speedup:.1}x)",
        topk_secs * 1e3,
        sort_secs * 1e3
    );

    // Fold everything into one obs snapshot (enablement is thread-local,
    // so publishing happens here on the main thread).
    dgnn_obs::reset();
    dgnn_obs::enable();
    let summary = stats.publish(elapsed);
    dgnn_obs::gauge_set("serve/clients", CLIENTS as f64);
    dgnn_obs::gauge_set("serve/requests_per_client", REQUESTS_PER_CLIENT as f64);
    dgnn_obs::gauge_set("serve/checkpoint_bytes", ckpt_bytes as f64);
    dgnn_obs::gauge_set("serve/topk_speedup_vs_sort", speedup);
    dgnn_obs::gauge_set("serve/obs_overhead_ratio", obs_overhead);
    dgnn_obs::gauge_set("serve/zipf_theta", ZIPF_THETA);
    if let (Some(rss), Some(peak)) = (procstat::rss_bytes(), procstat::peak_rss_bytes()) {
        dgnn_obs::gauge_set(procstat::RSS_GAUGE, rss as f64);
        dgnn_obs::gauge_set(procstat::PEAK_RSS_GAUGE, peak as f64);
    }
    dgnn_obs::counter_add("serve/smoke_failures", smoke_failures as u64);
    dgnn_obs::counter_add("serve/scrape_failures", scrape_failures as u64);
    dgnn_obs::counter_add("serve/consistency_failures", consistency_failures);

    // Phase attribution: per-phase p50/p99 from the live shared histograms
    // plus each phase group's share of the summed p99 — "is tail latency
    // queueing or compute?" answered from the benchmark artifact alone.
    let shared_hists = dgnn_obs::shared::hist_snapshots();
    let mut phase_p99: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    println!("phase attribution (p50 / p99 ms):");
    for phase in PHASES {
        if let Some(h) = shared_hists.get(&format!("serve/phase/{phase}_ms")) {
            let (q50, q99) = (h.quantile(0.50), h.quantile(0.99));
            dgnn_obs::gauge_set(&format!("serve/phase/{phase}_p50_ms"), q50);
            dgnn_obs::gauge_set(&format!("serve/phase/{phase}_p99_ms"), q99);
            phase_p99.insert(phase, q99);
            println!("  {phase:<15} {q50:>8.3} / {q99:>8.3}");
        }
    }
    let p99_total: f64 = phase_p99.values().sum();
    if p99_total > 0.0 {
        let share = |keys: &[&str]| {
            keys.iter().filter_map(|k| phase_p99.get(k)).sum::<f64>() / p99_total
        };
        let queue = share(&["queue_wait", "batch_assembly"]);
        let compute = share(&["parse", "engine"]);
        let write = share(&["write"]);
        dgnn_obs::gauge_set("serve/attribution/queue_share_p99", queue);
        dgnn_obs::gauge_set("serve/attribution/compute_share_p99", compute);
        dgnn_obs::gauge_set("serve/attribution/write_share_p99", write);
        println!(
            "p99 share: queue {:.0}% / compute {:.0}% / write {:.0}%",
            queue * 100.0,
            compute * 100.0,
            write * 100.0
        );
    }

    let snapshot = dgnn_obs::snapshot();
    dgnn_obs::disable();
    dgnn_obs::reset();
    println!(
        "latency p50/p95/p99: {:.2}/{:.2}/{:.2} ms, mean batch {:.2} over {} dispatches",
        summary.latency_ms.0,
        summary.latency_ms.1,
        summary.latency_ms.2,
        summary.batch_size_mean,
        summary.batches
    );

    if smoke_failures > 0 || consistency_failures > 0 || scrape_failures > 0 {
        eprintln!(
            "FAIL: {smoke_failures} malformed-request smoke failure(s), \
             {consistency_failures} consistency failure(s), \
             {scrape_failures} telemetry scrape failure(s)"
        );
        return ExitCode::FAILURE;
    }

    if let Some(path) = check_path {
        if ok == 0 {
            eprintln!("REGRESSION serve: zero successful requests");
            return ExitCode::FAILURE;
        }
        if obs_overhead < OBS_OVERHEAD_FLOOR {
            eprintln!(
                "REGRESSION serve: live telemetry costs too much — obs-enabled qps is \
                 {obs_overhead:.3}x obs-disabled (floor {OBS_OVERHEAD_FLOOR})"
            );
            return ExitCode::FAILURE;
        }
        let json = std::fs::read_to_string(path).expect("loadgen: reading baseline file");
        let Some(base) = baseline_qps(&json) else {
            eprintln!("REGRESSION serve: serve/qps missing from baseline {path}");
            return ExitCode::FAILURE;
        };
        let qps = (ok + err) as f64 / elapsed.max(1e-9);
        let floor = base * (1.0 - REGRESSION_BUDGET);
        if qps < floor {
            eprintln!(
                "REGRESSION serve: {qps:.0} qps is more than {:.0}% below baseline {base:.0} \
                 (floor {floor:.0})",
                100.0 * REGRESSION_BUDGET
            );
            return ExitCode::FAILURE;
        }
        println!("qps check passed against {path} ({qps:.0} vs baseline {base:.0})");
        return ExitCode::SUCCESS;
    }

    let mut out = String::from("{\n  \"models\": {\n");
    out.push_str(&format!("    \"DGNN-serve\": {}\n", snapshot_to_json(&snapshot, 4).trim_start()));
    out.push_str("  }\n}\n");
    std::fs::write("BENCH_serve.json", out).expect("loadgen: writing BENCH_serve.json");
    println!("\nwrote BENCH_serve.json and results/dgnn.ckpt");
    ExitCode::SUCCESS
}
