//! Shared fixtures for the cross-crate integration tests (see
//! `tests/tests/*.rs`).

use dgnn_baselines::BaselineConfig;
use dgnn_core::DgnnConfig;

/// A fast DGNN config for integration tests.
pub fn quick_dgnn() -> DgnnConfig {
    DgnnConfig { dim: 8, layers: 2, memory_units: 4, epochs: 4, batch_size: 256, ..DgnnConfig::default() }
}

/// A fast baseline config for integration tests.
pub fn quick_baseline() -> BaselineConfig {
    BaselineConfig { dim: 8, layers: 2, epochs: 3, batch_size: 256, ..BaselineConfig::default() }
}

/// HR@10 of uniformly random ranking under the 100-negative protocol.
pub const RANDOM_HR10: f64 = 10.0 / 101.0;
