//! HR@N and NDCG@N (the paper's Eq. 12).
//!
//! Ranking runs on the serving tier's heap-based partial top-K kernel
//! ([`dgnn_tensor::top_k_row`], `O(c · log N)` per case) rather than a
//! full sort or an `O(c·N)` counting sweep per cutoff. The protocol is
//! unchanged: candidates are scored positive-first, then *reordered
//! positive-last* before selection, so the kernel's ascending-index
//! tie-break makes every tied negative outrank the positive — exactly the
//! conservative ties-against-the-positive convention (verified against a
//! counting oracle by a proptest below).

use dgnn_data::TestInstance;
use dgnn_tensor::top_k_row;

use crate::Recommender;

/// The top-N cutoffs the paper reports (Tables II–III, Figures 4–8).
pub const TOP_NS: [usize; 3] = [5, 10, 20];

/// Hit rate and NDCG at one cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankingMetrics {
    /// `HR@N`: fraction of test users whose held-out positive ranks in the
    /// top N of the 101 candidates.
    pub hr: f64,
    /// `NDCG@N`: discounted gain of the positive's rank; `IDCG = 1` for the
    /// single-positive protocol, so this is `1/log₂(rank + 1)` when hit.
    pub ndcg: f64,
}

/// Rank (1-based) of the positive (`scores[0]`) among the candidates when
/// it lands in the top `n`, else `None`.
///
/// Ties are broken *against* the positive (a tied negative outranks it),
/// the conservative convention — a model must strictly separate the
/// positive to get credit. Implemented by reordering the row positive-last
/// and running the heap-based partial top-`n` select: the kernel's total
/// order (score descending, index ascending on ties) then places every
/// tied negative ahead of the positive, so the positive's 1-based position
/// in the selected prefix *is* its conservative rank.
fn positive_rank_within(scores: &[f32], n: usize) -> Option<usize> {
    let mut row = Vec::with_capacity(scores.len());
    row.extend_from_slice(&scores[1..]);
    row.push(scores[0]);
    let k = n.min(row.len());
    let mut idx = vec![0u32; k];
    let mut sel = vec![0f32; k];
    top_k_row(&row, &mut idx, &mut sel);
    let positive = (row.len() - 1) as u32;
    idx.iter().position(|&i| i == positive).map(|p| p + 1)
}

/// Evaluates a model at one cutoff.
pub fn evaluate_at(model: &dyn Recommender, test: &[TestInstance], n: usize) -> RankingMetrics {
    assert!(n > 0, "evaluate_at: cutoff must be positive");
    assert!(!test.is_empty(), "evaluate_at: empty test set");
    let mut hits = 0.0;
    let mut gain = 0.0;
    for case in test {
        let candidates: Vec<usize> = case.candidates().map(|v| v as usize).collect();
        let scores = model.score(case.user as usize, &candidates);
        debug_assert_eq!(scores.len(), candidates.len(), "score length mismatch");
        if let Some(rank) = positive_rank_within(&scores, n) {
            hits += 1.0;
            gain += 1.0 / ((rank as f64) + 1.0).log2();
        }
    }
    let m = test.len() as f64;
    RankingMetrics { hr: hits / m, ndcg: gain / m }
}

/// Evaluates at all of the paper's cutoffs ([`TOP_NS`]) with one top-K
/// select per case (at the largest cutoff; the smaller cutoffs are
/// prefixes of the same selection because the order is total).
pub fn evaluate(model: &dyn Recommender, test: &[TestInstance]) -> [RankingMetrics; 3] {
    assert!(!test.is_empty(), "evaluate: empty test set");
    let n_max = TOP_NS[TOP_NS.len() - 1];
    let mut out = [RankingMetrics::default(); 3];
    for case in test {
        let candidates: Vec<usize> = case.candidates().map(|v| v as usize).collect();
        let scores = model.score(case.user as usize, &candidates);
        if let Some(rank) = positive_rank_within(&scores, n_max) {
            for (slot, &n) in out.iter_mut().zip(TOP_NS.iter()) {
                if rank <= n {
                    slot.hr += 1.0;
                    slot.ndcg += 1.0 / ((rank as f64) + 1.0).log2();
                }
            }
        }
    }
    let m = test.len() as f64;
    for slot in &mut out {
        slot.hr /= m;
        slot.ndcg /= m;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recommender with a fixed global item ordering: item id = score.
    struct Oracle;
    impl Recommender for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn score(&self, _user: usize, items: &[usize]) -> Vec<f32> {
            items.iter().map(|&v| v as f32).collect()
        }
    }

    fn case(pos: u32, negs: &[u32]) -> TestInstance {
        TestInstance { user: 0, pos_item: pos, negatives: negs.to_vec() }
    }

    #[test]
    fn perfect_ranking_gives_ones() {
        // Positive item 100 outranks all negatives.
        let test = vec![case(100, &[1, 2, 3, 4])];
        let m = evaluate_at(&Oracle, &test, 1);
        assert_eq!(m.hr, 1.0);
        assert_eq!(m.ndcg, 1.0);
    }

    #[test]
    fn rank_two_halves_ndcg_log() {
        // One negative (200) beats the positive (100): rank 2.
        let test = vec![case(100, &[200, 1, 2])];
        let m = evaluate_at(&Oracle, &test, 5);
        assert_eq!(m.hr, 1.0);
        assert!((m.ndcg - 1.0 / 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn miss_outside_cutoff() {
        let test = vec![case(0, &[10, 20, 30])]; // rank 4
        let m = evaluate_at(&Oracle, &test, 3);
        assert_eq!(m.hr, 0.0);
        assert_eq!(m.ndcg, 0.0);
        let m = evaluate_at(&Oracle, &test, 4);
        assert_eq!(m.hr, 1.0);
    }

    #[test]
    fn ties_count_against_the_positive() {
        struct Flat;
        impl Recommender for Flat {
            fn name(&self) -> &str {
                "flat"
            }
            fn score(&self, _: usize, items: &[usize]) -> Vec<f32> {
                vec![0.0; items.len()]
            }
        }
        let test = vec![case(1, &[2, 3, 4, 5])]; // all tied → rank 5
        let m = evaluate_at(&Flat, &test, 4);
        assert_eq!(m.hr, 0.0);
    }

    #[test]
    fn averaged_over_users() {
        let test = vec![case(100, &[1, 2]), case(0, &[10, 20])]; // hit + miss at N=1
        let m = evaluate_at(&Oracle, &test, 1);
        assert_eq!(m.hr, 0.5);
    }

    #[test]
    fn evaluate_matches_evaluate_at_per_cutoff() {
        let test =
            vec![case(100, &[1, 2, 3]), case(0, &[10, 20, 30]), case(15, &[10, 20, 30])];
        let all = evaluate(&Oracle, &test);
        for (i, &n) in TOP_NS.iter().enumerate() {
            let single = evaluate_at(&Oracle, &test, n);
            assert_eq!(all[i], single, "cutoff {n}");
        }
    }

    #[test]
    fn metrics_are_monotone_in_n() {
        let test =
            vec![case(100, &[1, 2, 3]), case(0, &[10, 20, 30]), case(15, &[10, 20, 30])];
        let all = evaluate(&Oracle, &test);
        assert!(all[0].hr <= all[1].hr && all[1].hr <= all[2].hr);
        assert!(all[0].ndcg <= all[1].ndcg && all[1].ndcg <= all[2].ndcg);
    }

    #[test]
    #[should_panic(expected = "empty test set")]
    fn empty_test_panics() {
        evaluate_at(&Oracle, &[], 10);
    }

    /// The counting implementation the kernel-based path replaced — kept
    /// as the oracle: rank = 1 + |{negatives with score ≥ positive}|.
    fn counting_rank(scores: &[f32]) -> usize {
        let pos = scores[0];
        1 + scores[1..].iter().filter(|&&s| s >= pos).count()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        #[test]
        fn kernel_rank_matches_counting_oracle(
            raw in proptest::collection::vec(0u32..16, 2..40),
            n in 1usize..25,
        ) {
            // Quantized scores force plenty of exact ties, the case where
            // the two conventions could diverge.
            let scores: Vec<f32> = raw.iter().map(|&q| q as f32 * 0.5 - 4.0).collect();
            let oracle = counting_rank(&scores);
            let got = positive_rank_within(&scores, n);
            if oracle <= n.min(scores.len()) {
                proptest::prop_assert_eq!(got, Some(oracle));
            } else {
                proptest::prop_assert_eq!(got, None);
            }
        }
    }
}
