//! **Extension experiment** (the paper's future-work §VI): side-relation
//! pretraining for cold-start. Compares DGNN trained from random init
//! against DGNN warm-started by `dgnn_core::Pretrainer` (self-supervised
//! link prediction on `S` and `T` only), reporting overall HR@10 and the
//! coldest-quartile HR@10 on yelp-s — the setting where behavioral data is
//! scarcest and side knowledge should matter most.

use dgnn_bench::{datasets, dgnn_config, write_csv, SEED};
use dgnn_core::{Dgnn, Pretrainer};
use dgnn_eval::groups::evaluate_by_group;
use dgnn_eval::{evaluate_at, Trainable};

fn main() {
    let data = datasets();
    let yelp = data.iter().find(|d| d.name == "yelp-s").expect("yelp-s preset");
    let counts = yelp.train_counts_per_user();

    let mut plain = Dgnn::new(dgnn_config());
    plain.fit(yelp, SEED);

    let pre = Pretrainer { dim: dgnn_config().dim, epochs: 30, ..Pretrainer::default() };
    let emb = pre.run(&yelp.graph, SEED);
    let mut warm = Dgnn::new(dgnn_config()).with_pretrained(emb);
    warm.fit(yelp, SEED);

    println!("=== Extension: side-relation pretraining on yelp-s ===\n");
    let mut rows = Vec::new();
    for (name, model) in [("DGNN", &plain), ("DGNN+pretrain", &warm)] {
        let overall = evaluate_at(model, &yelp.test, 10);
        let groups = evaluate_by_group(model, &yelp.test, &counts, 10);
        println!(
            "{name:<14} overall HR@10 {:.4}   coldest-quartile HR@10 {:.4}",
            overall.hr, groups.metrics[0].hr
        );
        rows.push(format!(
            "{name},{:.6},{:.6},{:.6},{:.6},{:.6}",
            overall.hr,
            groups.metrics[0].hr,
            groups.metrics[1].hr,
            groups.metrics[2].hr,
            groups.metrics[3].hr
        ));
    }
    let path = write_csv("ext_pretrain", "model,overall_hr10,q1_hr10,q2_hr10,q3_hr10,q4_hr10", &rows);
    println!("\nraw: {}", path.display());
}
