//! Additional ranking metrics beyond the paper's HR/NDCG — MRR,
//! Precision@N, and Recall@N — for downstream users who report them.
//!
//! Under the paper's single-positive protocol these have simple closed
//! relationships to HR (`Recall@N = HR@N`, `Precision@N = HR@N / N`), which
//! the tests pin down; MRR adds rank resolution that HR lacks.

use dgnn_data::TestInstance;

use crate::Recommender;

/// Extended metric bundle at one cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExtendedMetrics {
    /// Mean reciprocal rank of the positive (not truncated at N).
    pub mrr: f64,
    /// Precision@N.
    pub precision: f64,
    /// Recall@N.
    pub recall: f64,
}

/// Computes MRR / Precision@N / Recall@N under the 100-negative protocol.
pub fn evaluate_extended(
    model: &dyn Recommender,
    test: &[TestInstance],
    n: usize,
) -> ExtendedMetrics {
    assert!(n > 0, "evaluate_extended: cutoff must be positive");
    assert!(!test.is_empty(), "evaluate_extended: empty test set");
    let mut mrr = 0.0;
    let mut hits = 0.0;
    for case in test {
        let candidates: Vec<usize> = case.candidates().map(|v| v as usize).collect();
        let scores = model.score(case.user as usize, &candidates);
        let pos = scores[0];
        let rank = 1 + scores[1..].iter().filter(|&&s| s >= pos).count();
        mrr += 1.0 / rank as f64;
        if rank <= n {
            hits += 1.0;
        }
    }
    let m = test.len() as f64;
    ExtendedMetrics { mrr: mrr / m, precision: hits / (m * n as f64), recall: hits / m }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_at;

    struct Oracle;
    impl Recommender for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn score(&self, _u: usize, items: &[usize]) -> Vec<f32> {
            items.iter().map(|&v| v as f32).collect()
        }
    }

    fn case(pos: u32, negs: &[u32]) -> TestInstance {
        TestInstance { user: 0, pos_item: pos, negatives: negs.to_vec() }
    }

    #[test]
    fn recall_equals_hr_single_positive() {
        let test =
            vec![case(100, &[1, 2, 3]), case(0, &[10, 20, 30]), case(15, &[10, 20, 30])];
        for n in [1usize, 2, 4] {
            let ext = evaluate_extended(&Oracle, &test, n);
            let base = evaluate_at(&Oracle, &test, n);
            assert!((ext.recall - base.hr).abs() < 1e-12, "N={n}");
            assert!((ext.precision - base.hr / n as f64).abs() < 1e-12, "N={n}");
        }
    }

    #[test]
    fn mrr_is_mean_of_reciprocal_ranks() {
        // Case 1: rank 1 → 1.0; case 2: rank 4 → 0.25.
        let test = vec![case(100, &[1, 2, 3]), case(0, &[10, 20, 30])];
        let ext = evaluate_extended(&Oracle, &test, 10);
        assert!((ext.mrr - (1.0 + 0.25) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_distinguishes_ranks_hr_cannot() {
        // Both positives land inside the cutoff, at ranks 1 and 2:
        // HR@5 identical, MRR not.
        let rank1 = vec![case(100, &[1, 2, 3])];
        let rank2 = vec![case(25, &[30, 1, 2])];
        let a = evaluate_extended(&Oracle, &rank1, 5);
        let b = evaluate_extended(&Oracle, &rank2, 5);
        assert_eq!(a.recall, b.recall);
        assert!(a.mrr > b.mrr);
    }
}
