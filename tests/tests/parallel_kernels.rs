//! Parallel-kernel bit-identity tests: every kernel the pool partitions must
//! produce *bit-for-bit* the same floats at any thread count, because the
//! row-range partitioning never changes any per-element reduction order.
//! Property tests sweep random shapes and thread counts; the golden test
//! retrains DGNN end-to-end at `threads = 4` and demands the exact serial
//! loss history and embeddings.

use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::tiny;
use dgnn_eval::Trainable;
use dgnn_tensor::parallel;
use dgnn_tensor::{Csr, CsrBuilder, Matrix};
use proptest::prelude::*;

const SEED: u64 = 11;

/// Runs `f` with the kernel pool pinned to `threads` and (for parallel runs)
/// the work threshold dropped to one unit so even tiny test shapes dispatch
/// across the pool. Settings are thread-local, so proptest cases on this
/// test thread are restored to defaults afterwards.
fn with_pool<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    parallel::set_threads(threads);
    parallel::set_min_par_work(if threads > 1 { 1 } else { parallel::DEFAULT_MIN_PAR_WORK });
    let out = f();
    parallel::set_threads(1);
    parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
    out
}

/// Bitwise equality — `==` would hide `-0.0` vs `0.0` and NaN divergences,
/// and the contract is bit identity, not approximate agreement.
fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x:?} vs {y:?}"
        );
    }
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d))
}

fn csr(rows: usize, cols: usize) -> impl Strategy<Value = Csr> {
    collection::vec(((0..rows), (0..cols), -2.0f32..2.0), 0..rows * cols)
        .prop_map(move |trips| {
            let mut b = CsrBuilder::new(rows, cols);
            for (r, c, v) in trips {
                b.push(r, c, v);
            }
            b.build()
        })
}

/// Random shapes kept small enough for quick cases but large enough that
/// several partitions get non-empty row ranges at up to 6 threads.
fn dims3() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..24, 1usize..12, 1usize..12)
}

fn threads() -> impl Strategy<Value = usize> {
    2usize..7
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_family_is_bit_identical_across_threads(
        (m, k, n) in dims3(),
        t in threads(),
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let at = Matrix::from_fn(k, m, |_, _| next());
        let bt = Matrix::from_fn(m, k, |_, _| next());

        assert_bits_eq(
            &with_pool(1, || a.matmul(&b)),
            &with_pool(t, || a.matmul(&b)),
            "matmul",
        );
        assert_bits_eq(
            &with_pool(1, || at.matmul_tn(&bt.transpose())),
            &with_pool(t, || at.matmul_tn(&bt.transpose())),
            "matmul_tn",
        );
        assert_bits_eq(
            &with_pool(1, || a.matmul_nt(&Matrix::from_fn(n, k, |r, c| (r * k + c) as f32 * 0.1))),
            &with_pool(t, || a.matmul_nt(&Matrix::from_fn(n, k, |r, c| (r * k + c) as f32 * 0.1))),
            "matmul_nt",
        );
    }

    #[test]
    fn spmm_is_bit_identical_across_threads(
        a in csr(13, 7),
        x in matrix(7, 5),
        t in threads(),
    ) {
        assert_bits_eq(
            &with_pool(1, || a.spmm(&x)),
            &with_pool(t, || a.spmm(&x)),
            "spmm",
        );
    }

    #[test]
    fn activations_are_bit_identical_across_threads(
        x in matrix(17, 6),
        t in threads(),
    ) {
        assert_bits_eq(
            &with_pool(1, || x.leaky_relu(0.2)),
            &with_pool(t, || x.leaky_relu(0.2)),
            "leaky_relu",
        );
        assert_bits_eq(
            &with_pool(1, || x.map_weighted(32, f32::tanh)),
            &with_pool(t, || x.map_weighted(32, f32::tanh)),
            "tanh",
        );
        assert_bits_eq(
            &with_pool(1, || x.map_weighted(32, |v| if v > 20.0 { v } else { v.exp().ln_1p() })),
            &with_pool(t, || x.map_weighted(32, |v| if v > 20.0 { v } else { v.exp().ln_1p() })),
            "softplus",
        );
    }

    #[test]
    fn activation_grads_are_bit_identical_across_threads(
        x in matrix(17, 6),
        g in matrix(17, 6),
        t in threads(),
    ) {
        assert_bits_eq(
            &with_pool(1, || x.leaky_relu_grad(&g, 0.2)),
            &with_pool(t, || x.leaky_relu_grad(&g, 0.2)),
            "leaky_relu_grad",
        );
        let tout = x.map_weighted(32, f32::tanh);
        assert_bits_eq(
            &with_pool(1, || tout.tanh_grad(&g)),
            &with_pool(t, || tout.tanh_grad(&g)),
            "tanh_grad",
        );
        assert_bits_eq(
            &with_pool(1, || x.softplus_grad(&g)),
            &with_pool(t, || x.softplus_grad(&g)),
            "softplus_grad",
        );
    }

    #[test]
    fn layer_norm_is_bit_identical_across_threads(
        x in matrix(15, 8),
        g in matrix(15, 8),
        t in threads(),
    ) {
        let eps = 1e-6;
        let y1 = with_pool(1, || x.layer_norm_rows(eps));
        let yt = with_pool(t, || x.layer_norm_rows(eps));
        assert_bits_eq(&y1, &yt, "layer_norm_rows");
        assert_bits_eq(
            &with_pool(1, || Matrix::layer_norm_rows_grad(&x, &y1, &g, eps)),
            &with_pool(t, || Matrix::layer_norm_rows_grad(&x, &y1, &g, eps)),
            "layer_norm_rows_grad",
        );
    }

    #[test]
    fn gather_scatter_is_bit_identical_across_threads(
        idx in collection::vec(0usize..11, 1..40),
        src_seed in any::<u64>(),
        t in threads(),
    ) {
        let mut s = src_seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
        };
        let table = Matrix::from_fn(11, 5, |_, _| next());
        let src = Matrix::from_fn(idx.len(), 5, |_, _| next());

        assert_bits_eq(
            &with_pool(1, || table.gather_rows(&idx)),
            &with_pool(t, || table.gather_rows(&idx)),
            "gather_rows",
        );

        let scatter = |threads: usize| {
            with_pool(threads, || {
                let mut acc = Matrix::zeros(11, 5);
                acc.scatter_add_rows(&idx, &src);
                acc
            })
        };
        assert_bits_eq(&scatter(1), &scatter(t), "scatter_add_rows");
    }

    #[test]
    fn elementwise_ops_are_bit_identical_across_threads(
        a in matrix(19, 4),
        b in matrix(19, 4),
        t in threads(),
    ) {
        assert_bits_eq(&with_pool(1, || a.add(&b)), &with_pool(t, || a.add(&b)), "add");
        assert_bits_eq(
            &with_pool(1, || a.mul_elem(&b)),
            &with_pool(t, || a.mul_elem(&b)),
            "mul_elem",
        );
        let axpy = |threads: usize| {
            with_pool(threads, || {
                let mut c = a.clone();
                c.axpy(0.37, &b);
                c
            })
        };
        assert_bits_eq(&axpy(1), &axpy(t), "axpy");
        assert_bits_eq(
            &with_pool(1, || a.softmax_rows()),
            &with_pool(t, || a.softmax_rows()),
            "softmax_rows",
        );
        assert_bits_eq(
            &with_pool(1, || a.l2_normalize_rows(1e-9)),
            &with_pool(t, || a.l2_normalize_rows(1e-9)),
            "l2_normalize_rows",
        );
    }
}

// ---------------------------------------------------------------------------
// Golden test: the full DGNN training loop is bit-identical at threads = 4.
// ---------------------------------------------------------------------------

fn quick_dgnn() -> DgnnConfig {
    DgnnConfig {
        dim: 8,
        layers: 2,
        memory_units: 4,
        epochs: 3,
        batch_size: 256,
        ..Default::default()
    }
}

fn assert_bits_eq_slice(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn dgnn_training_is_bit_identical_at_four_threads() {
    let data = tiny(SEED);

    let mut serial = Dgnn::new(quick_dgnn().with_threads(1));
    serial.fit(&data, SEED);

    // Drop the dispatch threshold so the quick preset's small matrices
    // actually cross the pool instead of taking the serial fast path.
    let mut par = Dgnn::new(quick_dgnn().with_threads(4));
    parallel::set_min_par_work(1);
    par.fit(&data, SEED);
    parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
    parallel::set_threads(1);

    assert_bits_eq_slice(&serial.loss_history, &par.loss_history, "DGNN loss history");
    assert_bits_eq(
        serial.user_embeddings(),
        par.user_embeddings(),
        "DGNN user embeddings",
    );
    assert_bits_eq(
        serial.item_embeddings(),
        par.item_embeddings(),
        "DGNN item embeddings",
    );
}

#[test]
fn dgnn_planned_training_is_bit_identical_at_four_threads() {
    let data = tiny(SEED);

    let mut serial = Dgnn::new(quick_dgnn().with_memory_plan().with_threads(1));
    serial.fit(&data, SEED);

    let mut par = Dgnn::new(quick_dgnn().with_memory_plan().with_threads(4));
    parallel::set_min_par_work(1);
    par.fit(&data, SEED);
    parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
    parallel::set_threads(1);

    assert_bits_eq_slice(
        &serial.loss_history,
        &par.loss_history,
        "planned DGNN loss history",
    );
    assert_bits_eq(
        serial.user_embeddings(),
        par.user_embeddings(),
        "planned DGNN user embeddings",
    );
    assert_bits_eq(
        serial.item_embeddings(),
        par.item_embeddings(),
        "planned DGNN item embeddings",
    );
}
