//! The [`Recorder`] trait: generic construction of compute graphs.
//!
//! Model code builds its forward pass against `R: Recorder` instead of
//! [`crate::Tape`] directly. The two implementations in the workspace:
//!
//! * [`crate::Tape`] — *concrete* interpretation: every builder method
//!   eagerly computes the forward value and records the op for the reverse
//!   pass (training and inference).
//! * `dgnn_analysis::ShapeTracer` — *abstract* interpretation over the
//!   shape domain: no tensor data is ever allocated; ops are checked for
//!   shape compatibility, index-range safety, and numeric-stability
//!   hazards before any training step executes.
//!
//! Keeping the builder surface in one trait guarantees the static verifier
//! sees exactly the graph the trainer would execute — the two cannot
//! drift apart.

use std::rc::Rc;

use dgnn_tensor::{Csr, Matrix};

use crate::params::{ParamId, ParamSet};

/// Handle to a value recorded on a [`Recorder`].
///
/// Dropping a `Var` without consuming it means the node it names can never
/// reach the loss — a dead subgraph. The `must_use` warning surfaces that
/// at compile time; `dgnn-analysis` catches the general case at trace time.
#[must_use = "dropping a graph node creates a dead subgraph that never reaches the loss"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Node index inside the recorder that produced this handle (stable
    /// provenance for diagnostics).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a node index.
    ///
    /// Only [`Recorder`] implementations should call this; a `Var` forged
    /// for one recorder is meaningless on another.
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }
}

/// Records differentiable ops into a compute graph.
///
/// Every method appends one node and returns its handle. Implementations
/// decide what a "node" is: forward values ([`crate::Tape`]) or abstract
/// shapes (`dgnn_analysis::ShapeTracer`). Methods are `#[must_use]`: a
/// dropped return value is a dead subgraph in the making.
pub trait Recorder {
    // ---- leaves ---------------------------------------------------------

    /// Records a constant (no gradient flows to it).
    #[must_use]
    fn constant(&mut self, value: Matrix) -> Var;

    /// Records a parameter leaf linked back to `params`.
    #[must_use]
    fn param(&mut self, params: &ParamSet, id: ParamId) -> Var;

    /// Shape `(rows, cols)` of a recorded variable.
    fn shape(&self, v: Var) -> (usize, usize);

    // ---- elementwise ----------------------------------------------------

    /// `a + b` (same shape).
    #[must_use]
    fn add(&mut self, a: Var, b: Var) -> Var;

    /// `a - b` (same shape).
    #[must_use]
    fn sub(&mut self, a: Var, b: Var) -> Var;

    /// Elementwise `a ⊙ b` (same shape; `a` may equal `b`).
    #[must_use]
    fn mul(&mut self, a: Var, b: Var) -> Var;

    /// `-a`.
    #[must_use]
    fn neg(&mut self, a: Var) -> Var;

    /// `k · a`.
    #[must_use]
    fn scale(&mut self, a: Var, k: f32) -> Var;

    /// `a + k` (entrywise).
    #[must_use]
    fn add_scalar(&mut self, a: Var, k: f32) -> Var;

    // ---- linear algebra --------------------------------------------------

    /// Matrix product `a · b`.
    #[must_use]
    fn matmul(&mut self, a: Var, b: Var) -> Var;

    /// `aᵀ`.
    #[must_use]
    fn transpose(&mut self, a: Var) -> Var;

    /// Sparse propagation with a caller-provided transpose (avoids
    /// re-transposing the adjacency on every training step).
    #[must_use]
    fn spmm_with(&mut self, adj: &Rc<Csr>, adj_t: &Rc<Csr>, b: Var) -> Var;

    /// Sparse propagation `adj · b`. The transpose is taken once here; use
    /// [`Recorder::spmm_with`] to reuse a pre-transposed adjacency across
    /// steps.
    #[must_use]
    fn spmm(&mut self, adj: &Rc<Csr>, b: Var) -> Var {
        let at = Rc::new(adj.transpose());
        self.spmm_with(adj, &at, b)
    }

    // ---- activations -----------------------------------------------------

    /// Logistic sigmoid.
    #[must_use]
    fn sigmoid(&mut self, a: Var) -> Var;

    /// Hyperbolic tangent.
    #[must_use]
    fn tanh(&mut self, a: Var) -> Var;

    /// LeakyReLU with negative slope `alpha` (the paper uses 0.2).
    #[must_use]
    fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var;

    /// ReLU.
    #[must_use]
    fn relu(&mut self, a: Var) -> Var;

    /// Entrywise `eˣ`. Overflows for unbounded inputs — apply only to
    /// outputs of bounded ops (the static auditor enforces this).
    #[must_use]
    fn exp(&mut self, a: Var) -> Var;

    /// Numerically-stable `softplus(x) = ln(1 + eˣ)`.
    ///
    /// `mean(softplus(-(pos − neg)))` is exactly the paper's BPR loss
    /// `-ln σ(pos − neg)` (Eq. 11); see [`Recorder::bpr_loss`].
    #[must_use]
    fn softplus(&mut self, a: Var) -> Var;

    /// Entrywise natural logarithm. Only defined for inputs provably
    /// bounded away from zero — feed it `add_scalar(x, ε)` of a
    /// non-negative `x`; the static auditor's domain check enforces this.
    #[must_use]
    fn ln(&mut self, a: Var) -> Var;

    /// Elementwise quotient `a ⊘ b` (same shape). The divisor must be
    /// provably bounded away from zero (see [`Recorder::ln`]).
    #[must_use]
    fn div(&mut self, a: Var, b: Var) -> Var;

    /// Entrywise square root. The input must be provably non-negative
    /// (see [`Recorder::ln`]).
    #[must_use]
    fn sqrt(&mut self, a: Var) -> Var;

    // ---- broadcasts ------------------------------------------------------

    /// Adds the `1 × d` row vector `row` to every row of `a` (bias terms).
    #[must_use]
    fn add_row(&mut self, a: Var, row: Var) -> Var;

    /// Multiplies every row of `a` elementwise by the `1 × d` vector `row`
    /// (LayerNorm scale ω₁ in the paper's Eq. 7).
    #[must_use]
    fn mul_row(&mut self, a: Var, row: Var) -> Var;

    /// Multiplies row `i` of `a` by the scalar `col[i]` (`col` is `n × 1`;
    /// memory-unit attention weighting in the paper's Eq. 3).
    #[must_use]
    fn mul_col(&mut self, a: Var, col: Var) -> Var;

    // ---- reductions ------------------------------------------------------

    /// Scalar (`1 × 1`) sum of all entries.
    #[must_use]
    fn sum_all(&mut self, a: Var) -> Var;

    /// Scalar (`1 × 1`) mean of all entries.
    #[must_use]
    fn mean_all(&mut self, a: Var) -> Var;

    /// `n × 1` per-row sums.
    #[must_use]
    fn row_sum(&mut self, a: Var) -> Var;

    /// `1 × d` per-column means (graph readout).
    #[must_use]
    fn col_mean(&mut self, a: Var) -> Var;

    // ---- structure -------------------------------------------------------

    /// Left-to-right concatenation (cross-layer aggregation, Eq. 8).
    #[must_use]
    fn concat_cols(&mut self, parts: &[Var]) -> Var;

    /// Copy of columns `[start, end)` (multi-head splitting).
    #[must_use]
    fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var;

    /// Embedding lookup: output row `i` is `a.row(idx[i])`. Duplicate
    /// indices are allowed; their gradients accumulate.
    #[must_use]
    fn gather(&mut self, a: Var, idx: Rc<Vec<usize>>) -> Var;

    // ---- normalizers -----------------------------------------------------

    /// Row-wise LayerNorm `(x − μ) / √(σ² + eps)` without affine terms.
    #[must_use]
    fn layer_norm_rows(&mut self, a: Var, eps: f32) -> Var;

    /// Row-wise L2 normalization; rows with norm ≤ `eps` pass through.
    #[must_use]
    fn l2_normalize_rows(&mut self, a: Var, eps: f32) -> Var;

    /// `n × 1` per-row dot products (scoring a batch of user/item pairs).
    #[must_use]
    fn row_dots(&mut self, a: Var, b: Var) -> Var;

    /// Row-wise softmax.
    #[must_use]
    fn softmax_rows(&mut self, a: Var) -> Var;

    // ---- segment (edge-attention) ops ------------------------------------

    /// Softmax over contiguous segments of an `E × 1` logit vector.
    ///
    /// `seg` is a CSR-style pointer of length `N + 1`: edges
    /// `seg[n]..seg[n+1]` belong to target node `n`. This is the
    /// "edge softmax" primitive behind every attention baseline (GraphRec,
    /// HGT, KGAT, HAN, DisenHAN, SAMN).
    #[must_use]
    fn segment_softmax(&mut self, logits: Var, seg: Rc<Vec<usize>>) -> Var;

    /// Weighted segment sum: `out[n] = Σ_{e ∈ seg(n)} w[e] · v.row(e)`.
    ///
    /// With `w` from [`Recorder::segment_softmax`] this is attention
    /// aggregation; with constant weights it is plain neighborhood sum.
    #[must_use]
    fn segment_weighted_sum(&mut self, w: Var, v: Var, seg: Rc<Vec<usize>>) -> Var;

    // ---- misc ------------------------------------------------------------

    /// Elementwise product with a fixed 0/`1/(1-p)` mask (inverted
    /// dropout). The mask is treated as a constant.
    #[must_use]
    fn dropout_mask(&mut self, a: Var, mask: Matrix) -> Var;

    /// The paper's pairwise BPR objective (Eq. 11 without the weight-decay
    /// term, which the optimizers apply):
    /// `mean(softplus(−(pos − neg))) = mean(−ln σ(pos − neg))`.
    #[must_use]
    fn bpr_loss(&mut self, pos_scores: Var, neg_scores: Var) -> Var {
        let diff = self.sub(pos_scores, neg_scores);
        let neg_diff = self.neg(diff);
        let sp = self.softplus(neg_diff);
        self.mean_all(sp)
    }
}
