//! The heterogeneous graph container.

use dgnn_tensor::{Csr, CsrBuilder};

/// Vertex families of the collaborative heterogeneous graph
/// (`D = U ∪ V ∪ R`, Eq. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeType {
    /// A user `u ∈ U`.
    User,
    /// An item `v ∈ V`.
    Item,
    /// A meta relation node `r ∈ R` (e.g. a product category).
    Relation,
}

/// One observed user–item interaction `y_{i,j} = 1`, with a logical
/// timestamp (sequence position) for the temporal baseline (DGRec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interaction {
    /// User index in `0..num_users`.
    pub user: u32,
    /// Item index in `0..num_items`.
    pub item: u32,
    /// Logical time; larger = more recent.
    pub time: u32,
}

/// Immutable heterogeneous graph with precomputed CSR views.
///
/// Constructed through [`HeteroGraphBuilder`]. All adjacencies store raw
/// weight 1.0 per edge; models apply their own normalization
/// (`row_normalized` / `sym_normalized`) at build time.
#[derive(Debug, Clone)]
pub struct HeteroGraph {
    num_users: usize,
    num_items: usize,
    num_relations: usize,
    interactions: Vec<Interaction>,
    social: Vec<(u32, u32)>,
    item_rels: Vec<(u32, u32)>,
    ui: Csr,
    iu: Csr,
    ss: Csr,
    ir: Csr,
    ri: Csr,
}

impl HeteroGraph {
    /// Number of users `|U|`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items `|V|`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of meta relation nodes `|R|`.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Total vertices `|D| = |U| + |V| + |R|`.
    pub fn num_nodes(&self) -> usize {
        self.num_users + self.num_items + self.num_relations
    }

    /// All interactions, in insertion order.
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// All undirected social ties, deduplicated with `a < b`.
    pub fn social_ties(&self) -> &[(u32, u32)] {
        &self.social
    }

    /// All item–relation links.
    pub fn item_relations(&self) -> &[(u32, u32)] {
        &self.item_rels
    }

    /// User → item adjacency (`|U| × |V|`, from `Y`).
    pub fn ui(&self) -> &Csr {
        &self.ui
    }

    /// Item → user adjacency (`|V| × |U|`, transpose of `Y`).
    pub fn iu(&self) -> &Csr {
        &self.iu
    }

    /// User → user social adjacency (`|U| × |U|`, symmetric).
    pub fn ss(&self) -> &Csr {
        &self.ss
    }

    /// Item → relation adjacency (`|V| × |R|`, from `T`).
    pub fn ir(&self) -> &Csr {
        &self.ir
    }

    /// Relation → item adjacency (`|R| × |V|`, transpose of `T`).
    pub fn ri(&self) -> &Csr {
        &self.ri
    }

    /// Items user `u` interacted with.
    pub fn items_of(&self, user: usize) -> &[usize] {
        self.ui.row_cols(user)
    }

    /// Users who interacted with item `v`.
    pub fn users_of(&self, item: usize) -> &[usize] {
        self.iu.row_cols(item)
    }

    /// Social neighbors `N^S(u)`.
    pub fn friends_of(&self, user: usize) -> &[usize] {
        self.ss.row_cols(user)
    }

    /// Interaction density `|Y| / (|U| · |V|)` — the paper's Table I
    /// "Interaction Density Degree".
    pub fn interaction_density(&self) -> f64 {
        self.interactions.len() as f64 / (self.num_users as f64 * self.num_items as f64)
    }

    /// Social density `2|S| / |U|²` — the paper's Table I "Social Tie
    /// Density Degree" (both directions counted, as in the paper's tie
    /// counts).
    pub fn social_density(&self) -> f64 {
        (2 * self.social.len()) as f64 / (self.num_users as f64 * self.num_users as f64)
    }

    /// Directed social-tie count (each undirected tie counted twice, the
    /// convention Table I uses).
    pub fn num_social_ties_directed(&self) -> usize {
        2 * self.social.len()
    }
}

/// Incremental builder for [`HeteroGraph`].
#[derive(Debug, Clone)]
pub struct HeteroGraphBuilder {
    num_users: usize,
    num_items: usize,
    num_relations: usize,
    interactions: Vec<Interaction>,
    social: Vec<(u32, u32)>,
    item_rels: Vec<(u32, u32)>,
}

impl HeteroGraphBuilder {
    /// Starts a builder with fixed vertex-set sizes.
    pub fn new(num_users: usize, num_items: usize, num_relations: usize) -> Self {
        Self {
            num_users,
            num_items,
            num_relations,
            interactions: Vec::new(),
            social: Vec::new(),
            item_rels: Vec::new(),
        }
    }

    /// Records an interaction `y_{u,v} = 1` at logical time `time`.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn interaction(&mut self, user: usize, item: usize, time: u32) -> &mut Self {
        assert!(user < self.num_users, "interaction: user {user} out of range");
        assert!(item < self.num_items, "interaction: item {item} out of range");
        self.interactions.push(Interaction { user: user as u32, item: item as u32, time });
        self
    }

    /// Records an undirected social tie `s_{a,b} = 1`. Self-loops are
    /// rejected; duplicates are deduplicated at build time.
    pub fn social_tie(&mut self, a: usize, b: usize) -> &mut Self {
        assert!(a < self.num_users && b < self.num_users, "social_tie: user out of range");
        assert_ne!(a, b, "social_tie: self-loops are not social ties");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.social.push((lo as u32, hi as u32));
        self
    }

    /// Records an item–relation link `t_{v,r} = 1`.
    pub fn item_relation(&mut self, item: usize, rel: usize) -> &mut Self {
        assert!(item < self.num_items, "item_relation: item {item} out of range");
        assert!(rel < self.num_relations, "item_relation: relation {rel} out of range");
        self.item_rels.push((item as u32, rel as u32));
        self
    }

    /// Finalizes: deduplicates edges and materializes all CSR views.
    pub fn build(mut self) -> HeteroGraph {
        self.social.sort_unstable();
        self.social.dedup();
        self.item_rels.sort_unstable();
        self.item_rels.dedup();
        // Interactions keep duplicates out of the adjacency but keep the
        // event list intact (repeat purchases matter for timestamps).
        let mut seen: Vec<(u32, u32)> =
            self.interactions.iter().map(|i| (i.user, i.item)).collect();
        seen.sort_unstable();
        seen.dedup();

        let mut ui_b = CsrBuilder::new(self.num_users, self.num_items);
        for &(u, v) in &seen {
            ui_b.push(u as usize, v as usize, 1.0);
        }
        let ui = ui_b.build();
        let iu = ui.transpose();

        let mut ss_b = CsrBuilder::new(self.num_users, self.num_users);
        for &(a, b) in &self.social {
            ss_b.push(a as usize, b as usize, 1.0);
            ss_b.push(b as usize, a as usize, 1.0);
        }
        let ss = ss_b.build();

        let mut ir_b = CsrBuilder::new(self.num_items, self.num_relations.max(1));
        for &(v, r) in &self.item_rels {
            ir_b.push(v as usize, r as usize, 1.0);
        }
        let ir = ir_b.build();
        let ri = ir.transpose();

        HeteroGraph {
            num_users: self.num_users,
            num_items: self.num_items,
            num_relations: self.num_relations,
            interactions: self.interactions,
            social: self.social,
            item_rels: self.item_rels,
            ui,
            iu,
            ss,
            ir,
            ri,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new(3, 4, 2);
        b.interaction(0, 0, 0)
            .interaction(0, 1, 1)
            .interaction(1, 1, 0)
            .interaction(2, 3, 0)
            .social_tie(0, 1)
            .social_tie(1, 2)
            .item_relation(0, 0)
            .item_relation(1, 0)
            .item_relation(3, 1);
        b.build()
    }

    #[test]
    fn counts_and_views() {
        let g = toy();
        assert_eq!(g.num_users(), 3);
        assert_eq!(g.num_items(), 4);
        assert_eq!(g.num_relations(), 2);
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.interactions().len(), 4);
        assert_eq!(g.social_ties().len(), 2);
        assert_eq!(g.num_social_ties_directed(), 4);
    }

    #[test]
    fn adjacency_symmetry() {
        let g = toy();
        // Social matrix is symmetric.
        assert_eq!(g.friends_of(0), &[1]);
        assert_eq!(g.friends_of(1), &[0, 2]);
        assert_eq!(g.friends_of(2), &[1]);
        // ui and iu are transposes.
        assert_eq!(g.items_of(0), &[0, 1]);
        assert_eq!(g.users_of(1), &[0, 1]);
        // ir and ri are transposes.
        assert_eq!(g.ir().row_cols(1), &[0]);
        assert_eq!(g.ri().row_cols(0), &[0, 1]);
    }

    #[test]
    fn duplicate_edges_dedup_in_adjacency_not_events() {
        let mut b = HeteroGraphBuilder::new(2, 2, 1);
        b.interaction(0, 0, 0).interaction(0, 0, 5).social_tie(0, 1).social_tie(1, 0);
        let g = b.build();
        assert_eq!(g.interactions().len(), 2, "event list keeps repeats");
        assert_eq!(g.ui().nnz(), 1, "adjacency dedups");
        assert_eq!(g.social_ties().len(), 1, "undirected dedup");
    }

    #[test]
    fn densities() {
        let g = toy();
        assert!((g.interaction_density() - 4.0 / 12.0).abs() < 1e-12);
        assert!((g.social_density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn social_self_loop_rejected() {
        HeteroGraphBuilder::new(2, 1, 1).social_tie(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_interaction_rejected() {
        HeteroGraphBuilder::new(2, 2, 1).interaction(0, 5, 0);
    }

    #[test]
    fn zero_relation_graph_is_fine() {
        let mut b = HeteroGraphBuilder::new(2, 2, 0);
        b.interaction(0, 0, 0);
        let g = b.build();
        assert_eq!(g.num_relations(), 0);
        assert_eq!(g.ir().nnz(), 0);
    }
}
