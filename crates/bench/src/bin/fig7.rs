//! **E7 — Figure 7**: hyperparameter study. Sweeps the hidden dimension
//! `d ∈ {4, 8, 16, 32}`, the number of graph layers `L ∈ {0..3}`, and the
//! number of memory units `|M| ∈ {2, 4, 8, 16}`, reporting the performance
//! degradation ratio relative to the best setting (the paper's y-axis).
//!
//! Runs on ciao-s and yelp-s by default; pass `--full` to include
//! epinions-s as in the paper.

use dgnn_bench::{datasets, dgnn_config, run_cell, write_csv, SEED};
use dgnn_core::{Dgnn, DgnnConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let data = datasets();
    let selected: Vec<_> = data
        .iter()
        .filter(|d| full || d.name == "ciao-s" || d.name == "yelp-s")
        .collect();

    let sweeps: Vec<(&str, Vec<DgnnConfig>)> = vec![
        (
            "dimension d",
            [4, 8, 16, 32].iter().map(|&dim| DgnnConfig { dim, ..dgnn_config() }).collect(),
        ),
        (
            "layers L",
            (0..=3).map(|layers| DgnnConfig { layers, ..dgnn_config() }).collect(),
        ),
        (
            "memory units |M|",
            [2, 4, 8, 16]
                .iter()
                .map(|&memory_units| DgnnConfig { memory_units, ..dgnn_config() })
                .collect(),
        ),
    ];

    println!("=== Figure 7: hyperparameter study (HR@10, NDCG@10) ===\n");
    let mut rows = Vec::new();
    for ds in &selected {
        println!("{}:", ds.name);
        for (sweep_name, configs) in &sweeps {
            let mut cells = Vec::new();
            for cfg in configs {
                let mut model = Dgnn::new(cfg.clone());
                let cell = run_cell(&mut model, ds, SEED);
                cells.push((cfg.clone(), cell));
            }
            let best_hr = cells
                .iter()
                .map(|(_, c)| c.metrics[1].hr)
                .fold(f64::NEG_INFINITY, f64::max);
            println!("  sweep: {sweep_name}");
            for (cfg, cell) in &cells {
                let value = match *sweep_name {
                    "dimension d" => cfg.dim,
                    "layers L" => cfg.layers,
                    _ => cfg.memory_units,
                };
                let degradation = (best_hr - cell.metrics[1].hr) / best_hr.max(1e-12);
                println!(
                    "    {value:>3}: HR@10 {:.4}  NDCG@10 {:.4}  (degradation {:.2}%)",
                    cell.metrics[1].hr,
                    cell.metrics[1].ndcg,
                    degradation * 100.0
                );
                rows.push(format!(
                    "{},{},{},{:.6},{:.6},{:.6}",
                    ds.name,
                    sweep_name.replace(' ', "_"),
                    value,
                    cell.metrics[1].hr,
                    cell.metrics[1].ndcg,
                    degradation
                ));
            }
        }
        println!();
    }
    let path = write_csv("fig7", "dataset,sweep,value,hr10,ndcg10,degradation", &rows);
    println!("raw: {}", path.display());
}
