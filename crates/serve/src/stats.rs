//! Serving-side metrics: request latencies, batch sizes, outcome counts.
//!
//! Worker and batcher threads record raw samples here (one mutex-guarded
//! push per event — the mutex is uncontended at benchmark concurrency and
//! keeps the recorder allocation-predictable). [`ServerStats::publish`]
//! later folds the samples into the process-wide `dgnn-obs` registry *on
//! the calling thread* (obs enablement is thread-local), emitting
//! histograms plus p50/p95/p99 gauges so `BENCH_serve.json` flows through
//! the same pinned `snapshot_to_json` schema as `BENCH_profile.json`.

use std::sync::Mutex;

/// Shared collector for one server's lifetime.
#[derive(Debug, Default)]
pub struct ServerStats {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// End-to-end request latencies, microseconds.
    latency_us: Vec<u64>,
    /// Number of queries coalesced per engine dispatch.
    batch_sizes: Vec<u32>,
    ok: u64,
    err: u64,
}

/// Point-in-time summary of the collected samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSummary {
    /// Requests answered with a 2xx.
    pub ok: u64,
    /// Requests answered with a 4xx/5xx.
    pub err: u64,
    /// Latency percentiles in milliseconds: (p50, p95, p99).
    pub latency_ms: (f64, f64, f64),
    /// Mean coalesced batch size.
    pub batch_size_mean: f64,
    /// Number of engine dispatches.
    pub batches: u64,
}

impl ServerStats {
    /// Fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned mutex only means a panicking thread held it; the
        // sample vectors are still structurally valid, so keep serving.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one completed request.
    pub fn record_request(&self, latency_us: u64, ok: bool) {
        let mut g = self.lock();
        g.latency_us.push(latency_us);
        if ok {
            g.ok += 1;
        } else {
            g.err += 1;
        }
    }

    /// Records the size of one coalesced engine dispatch.
    pub fn record_batch(&self, size: usize) {
        self.lock().batch_sizes.push(size as u32);
    }

    /// Summarizes everything recorded so far.
    pub fn summary(&self) -> StatsSummary {
        let g = self.lock();
        let mut lat = g.latency_us.clone();
        lat.sort_unstable();
        let pct = |q: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = (q * (lat.len() - 1) as f64).round() as usize;
            lat[idx.min(lat.len() - 1)] as f64 / 1000.0
        };
        let batches = g.batch_sizes.len() as u64;
        let batch_size_mean = if batches == 0 {
            0.0
        } else {
            g.batch_sizes.iter().map(|&b| f64::from(b)).sum::<f64>() / batches as f64
        };
        StatsSummary {
            ok: g.ok,
            err: g.err,
            latency_ms: (pct(0.50), pct(0.95), pct(0.99)),
            batch_size_mean,
            batches,
        }
    }

    /// Publishes the collected samples into the thread-local `dgnn-obs`
    /// registry: `serve/latency_ms` + `serve/batch_size` histograms,
    /// `serve/latency_ms_{p50,p95,p99}`, `serve/qps`, and
    /// `serve/batch_size_mean` gauges, `serve/requests_{ok,err}` counters.
    /// Call from a thread with obs enabled (enablement is thread-local).
    pub fn publish(&self, elapsed_secs: f64) -> StatsSummary {
        let s = self.summary();
        {
            let g = self.lock();
            for &us in &g.latency_us {
                dgnn_obs::hist_record("serve/latency_ms", us as f64 / 1000.0);
            }
            for &b in &g.batch_sizes {
                dgnn_obs::hist_record("serve/batch_size", f64::from(b));
            }
        }
        dgnn_obs::counter_add("serve/requests_ok", s.ok);
        dgnn_obs::counter_add("serve/requests_err", s.err);
        dgnn_obs::gauge_set("serve/latency_ms_p50", s.latency_ms.0);
        dgnn_obs::gauge_set("serve/latency_ms_p95", s.latency_ms.1);
        dgnn_obs::gauge_set("serve/latency_ms_p99", s.latency_ms.2);
        dgnn_obs::gauge_set("serve/batch_size_mean", s.batch_size_mean);
        let qps = if elapsed_secs > 0.0 { (s.ok + s.err) as f64 / elapsed_secs } else { 0.0 };
        dgnn_obs::gauge_set("serve/qps", qps);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_folds_counts_and_percentiles() {
        let s = ServerStats::new();
        for us in [1000, 2000, 3000, 4000, 100_000] {
            s.record_request(us, true);
        }
        s.record_request(500, false);
        s.record_batch(2);
        s.record_batch(4);
        let sum = s.summary();
        assert_eq!(sum.ok, 5);
        assert_eq!(sum.err, 1);
        assert_eq!(sum.batches, 2);
        assert!((sum.batch_size_mean - 3.0).abs() < 1e-12);
        // p50 of [0.5, 1, 2, 3, 4, 100] ms with rounding index 3 (0-based
        // round(0.5 * 5) = 3) is 3 ms; p99 lands on the max.
        assert!((sum.latency_ms.0 - 3.0).abs() < 1e-9, "p50 was {}", sum.latency_ms.0);
        assert!((sum.latency_ms.2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_summary_is_zeroed() {
        assert_eq!(ServerStats::new().summary(), StatsSummary::default());
    }

    #[test]
    fn publish_feeds_the_obs_registry() {
        dgnn_obs::reset();
        dgnn_obs::enable();
        let s = ServerStats::new();
        s.record_request(2000, true);
        s.record_batch(1);
        let sum = s.publish(2.0);
        dgnn_obs::disable();
        let snap = dgnn_obs::snapshot();
        dgnn_obs::reset();
        assert_eq!(sum.ok, 1);
        assert_eq!(snap.counters.get("serve/requests_ok"), Some(&1));
        assert!(snap.gauges.contains_key("serve/qps"));
        assert!(snap.histograms.contains_key("serve/latency_ms"));
    }
}
