#!/usr/bin/env bash
# Regenerates every table and figure of the paper in sequence.
# Output: stdout tables into results/logs/, raw CSV into results/.
set -u
cd "$(dirname "$0")"
mkdir -p results/logs

# Preflight: fail fast on graph/source problems before burning hours of
# training compute (see crates/analysis).
echo "=== preflight: static analysis ==="
cargo run -q -p dgnn-analysis --bin lint . || exit 1
cargo test -q -p dgnn-integration-tests --test ablation_shape static_analysis \
    || { echo "compute-graph audit failed; aborting experiments"; exit 1; }
BINS="table1 table2 table3 fig4 fig5 fig6 fig7 table4 fig8 fig9 fig10 ext_pretrain"
for bin in $BINS; do
    echo "=== running $bin ==="
    /usr/bin/time -f "$bin wall: %es" \
        cargo run --release -q -p dgnn-bench --bin "$bin" \
        >"results/logs/$bin.txt" 2>"results/logs/$bin.err" \
        || echo "$bin FAILED (see results/logs/$bin.err)"
    tail -2 "results/logs/$bin.err" | head -1
done
echo "ALL_EXPERIMENTS_DONE"
