//! Graph-optimizer integration tests: the golden bit-identity guarantee
//! (optimized execution computes *exactly* the same floats as unoptimized,
//! at one and at four kernel threads, planned and unplanned), the
//! independent rewrite proof over every traced model, and a property test
//! that random well-formed compute graphs always receive checker-proven
//! rewrite plans whose execution matches plain execution bit for bit on
//! both the forward and backward sweeps.

use dgnn_analysis::{
    check_plan_with_rewrites, check_rewrites, optimize, plan_with_rewrites, ShapeTracer,
};
use dgnn_autograd::{ParamSet, PlanHarness, Recorder, Tape, Var};
use dgnn_baselines::{BaselineConfig, Dgcf, DisenHan, Gccf, Mhcn, Ngcf};
use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::{tiny, TrainSampler};
use dgnn_eval::Trainable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 13;

fn quick_baseline() -> BaselineConfig {
    BaselineConfig { dim: 8, layers: 2, epochs: 3, batch_size: 256, ..Default::default() }
}

fn quick_dgnn() -> DgnnConfig {
    DgnnConfig {
        dim: 8,
        layers: 2,
        memory_units: 4,
        epochs: 3,
        batch_size: 256,
        ..Default::default()
    }
}

/// Bitwise equality for f32 slices — `==` would paper over `-0.0` and NaN
/// differences, and the golden guarantee is *bit* identity.
fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x:?} vs {y:?}"
        );
    }
}

/// Scores every test user against a fixed item slate — a dense probe of
/// the fitted model's observable state.
fn score_probe(model: &dyn dgnn_eval::Recommender, num_users: usize, num_items: usize) -> Vec<f32> {
    let items: Vec<usize> = (0..num_items).collect();
    (0..num_users).flat_map(|u| model.score(u, &items)).collect()
}

/// Uniform access to each baseline's per-epoch loss history.
trait LossHistory {
    fn history(&self) -> &[f32];
}
impl LossHistory for Ngcf {
    fn history(&self) -> &[f32] {
        self.loss_history()
    }
}
impl LossHistory for Gccf {
    fn history(&self) -> &[f32] {
        self.loss_history()
    }
}
impl LossHistory for Dgcf {
    fn history(&self) -> &[f32] {
        &self.loss_history
    }
}
impl LossHistory for Mhcn {
    fn history(&self) -> &[f32] {
        &self.loss_history
    }
}
impl LossHistory for DisenHan {
    fn history(&self) -> &[f32] {
        &self.loss_history
    }
}

fn loss_of(m: &impl LossHistory) -> Vec<f32> {
    m.history().to_vec()
}

// ---------------------------------------------------------------------------
// Golden tests: optimized execution is bit-identical to plain execution —
// serial, pooled, and composed with the static memory plan.
// ---------------------------------------------------------------------------

macro_rules! golden_opt_baseline {
    ($test:ident, $ty:ident) => {
        #[test]
        fn $test() {
            let data = tiny(SEED);
            let (nu, nv) = (data.graph.num_users(), data.graph.num_items());

            let mut plain = $ty::new(quick_baseline());
            plain.fit(&data, SEED);
            let ref_loss = loss_of(&plain);
            let ref_scores = score_probe(&plain, nu, nv);

            for (what, cfg) in [
                ("optimized, 1 thread", quick_baseline().with_graph_opt().with_threads(1)),
                ("optimized, 4 threads", quick_baseline().with_graph_opt().with_threads(4)),
                (
                    "optimized + planned",
                    quick_baseline().with_graph_opt().with_memory_plan().with_threads(1),
                ),
            ] {
                let mut on = $ty::new(cfg);
                on.fit(&data, SEED);
                assert_bits_eq(&ref_loss, &loss_of(&on), &format!("{what}: loss history"));
                assert_bits_eq(
                    &ref_scores,
                    &score_probe(&on, nu, nv),
                    &format!("{what}: scores"),
                );
            }
        }
    };
}

golden_opt_baseline!(ngcf_optimized_is_bit_identical, Ngcf);
golden_opt_baseline!(gccf_optimized_is_bit_identical, Gccf);
golden_opt_baseline!(dgcf_optimized_is_bit_identical, Dgcf);
golden_opt_baseline!(mhcn_optimized_is_bit_identical, Mhcn);
golden_opt_baseline!(disenhan_optimized_is_bit_identical, DisenHan);

#[test]
fn dgnn_optimized_is_bit_identical() {
    let data = tiny(SEED);
    let (nu, nv) = (data.graph.num_users(), data.graph.num_items());

    let mut plain = Dgnn::new(quick_dgnn());
    plain.fit(&data, SEED);

    for (what, cfg) in [
        ("optimized, 1 thread", quick_dgnn().with_graph_opt().with_threads(1)),
        ("optimized, 4 threads", quick_dgnn().with_graph_opt().with_threads(4)),
        (
            "optimized + planned",
            quick_dgnn().with_graph_opt().with_memory_plan().with_threads(1),
        ),
    ] {
        let mut on = Dgnn::new(cfg);
        on.fit(&data, SEED);
        assert_bits_eq(
            &plain.loss_history,
            &on.loss_history,
            &format!("DGNN {what}: loss history"),
        );
        assert_bits_eq(
            plain.user_embeddings().as_slice(),
            on.user_embeddings().as_slice(),
            &format!("DGNN {what}: user embeddings"),
        );
        assert_bits_eq(
            plain.item_embeddings().as_slice(),
            on.item_embeddings().as_slice(),
            &format!("DGNN {what}: item embeddings"),
        );
        assert_bits_eq(
            &score_probe(&plain, nu, nv),
            &score_probe(&on, nu, nv),
            &format!("DGNN {what}: scores"),
        );
    }
}

// ---------------------------------------------------------------------------
// Independent rewrite proof over every traced model, composed with the
// rewrite-aware memory plan.
// ---------------------------------------------------------------------------

#[test]
fn rewrite_checker_proves_every_traced_model() {
    let data = tiny(SEED);
    let bcfg = quick_baseline();
    let probe = TrainSampler::new(&data.graph)
        .batch(&mut StdRng::seed_from_u64(SEED ^ 0x9E37_79B9), bcfg.batch_size);

    let mut traces: Vec<(&str, ShapeTracer, Var)> = Vec::new();

    let mut m = Dgnn::new(quick_dgnn());
    m.prepare(&data.graph, SEED);
    let mut tr = ShapeTracer::new();
    let loss = m.record_step(&mut tr, &probe);
    traces.push(("DGNN", tr, loss));

    macro_rules! trace_of {
        ($name:literal, $ty:ident) => {{
            let mut tr = ShapeTracer::new();
            let (_, loss) = $ty::trace_step(&bcfg, &data, &probe, SEED, &mut tr);
            traces.push(($name, tr, loss));
        }};
    }
    trace_of!("NGCF", Ngcf);
    trace_of!("GCCF", Gccf);
    trace_of!("DGCF", Dgcf);
    trace_of!("MHCN", Mhcn);
    trace_of!("DisenHAN", DisenHan);

    for (name, tracer, loss) in &traces {
        let (rewrites, stats) = optimize(tracer, *loss, &[]);
        let proof = check_rewrites(tracer, *loss, &[], &rewrites)
            .unwrap_or_else(|v| panic!("{name}: rewrite plan failed its proof: {v}"));
        assert!(proof.nodes > 0, "{name}: empty rewrite proof");
        assert!(
            stats.cse_hits + stats.folded + stats.fused > 0,
            "{name}: the optimizer rewrote nothing — optimization is vacuous \
             ({stats:?})"
        );
        assert!(
            stats.nodes_after <= stats.nodes_before,
            "{name}: optimization grew the graph ({stats:?})"
        );

        // The rewrite-aware memory plan over the same trace must also prove.
        let mplan = plan_with_rewrites(tracer, *loss, &[], &rewrites);
        check_plan_with_rewrites(tracer, *loss, &[], &rewrites, &mplan).unwrap_or_else(|v| {
            panic!("{name}: rewrite-aware memory plan failed its proof: {v}")
        });
    }
}

// ---------------------------------------------------------------------------
// Property: random well-formed graphs always get checker-proven rewrite
// plans, and rewritten execution is bit-identical forward and backward.
// ---------------------------------------------------------------------------

/// Builds a random shape-valid compute graph: a chain over `n × d`
/// activations seeded by a param `x` and a constant `c`, with random unary
/// ops, random binary merges with earlier nodes, square projections
/// through `w`, and two op kinds that deliberately bait the optimizer —
/// restarting from the constant (growing foldable regions) and re-deriving
/// an earlier node (planting CSE duplicates). Closed by a scalar readout.
fn random_graph<R: Recorder>(tr: &mut R, x: Var, w: Var, c: Var, ops: &[(u8, usize)]) -> Var {
    let mut vars = vec![x, c];
    for &(op, pick) in ops {
        let prev = *vars.last().expect("non-empty");
        let other = vars[pick % vars.len()];
        let next = match op {
            0 => tr.sigmoid(prev),
            1 => tr.tanh(prev),
            2 => tr.leaky_relu(prev, 0.2),
            3 => tr.softplus(prev),
            4 => tr.scale(prev, 0.7),
            5 => tr.add(prev, other),
            6 => tr.mul(prev, other),
            7 => tr.matmul(prev, w),
            8 => {
                let ln = tr.layer_norm_rows(prev, 1e-5);
                tr.add(ln, other)
            }
            9 => tr.scale(c, 0.3),
            _ => tr.scale(other, 0.7),
        };
        vars.push(next);
    }
    let last = *vars.last().expect("non-empty");
    tr.mean_all(last)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_graphs_get_proven_rewrites_with_identical_values(
        ops in collection::vec((0u8..11, any::<usize>()), 1..32),
        use_plan in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut params = ParamSet::new();
        let xid = params.add("x", dgnn_tensor::Init::Uniform(0.5).build(6, 4, &mut rng));
        let wid = params.add("w", dgnn_tensor::Init::Uniform(0.5).build(4, 4, &mut rng));
        let cmat = dgnn_tensor::Init::Uniform(0.5).build(6, 4, &mut rng);

        let mut tr = ShapeTracer::new();
        let x = tr.param(&params, xid);
        let w = tr.param(&params, wid);
        let c = tr.constant(cmat.clone());
        let loss = random_graph(&mut tr, x, w, c, &ops);

        let (rewrites, stats) = optimize(&tr, loss, &[]);
        let proof = check_rewrites(&tr, loss, &[], &rewrites);
        prop_assert!(proof.is_ok(), "checker rejected the rewrite plan: {:?}", proof.err());
        prop_assert!(stats.nodes_after <= stats.nodes_before, "optimization grew the graph");

        // Reference values from a plain tape.
        let mut tape = Tape::new();
        let x = tape.param(&params, xid);
        let w = tape.param(&params, wid);
        let c = tape.constant(cmat.clone());
        let loss_v = random_graph(&mut tape, x, w, c, &ops);
        params.zero_grads();
        let ref_loss = tape.backward_into(loss_v, &mut params);
        let ref_gx: Vec<u32> = params.grad(xid).as_slice().iter().map(|f| f.to_bits()).collect();
        let ref_gw: Vec<u32> = params.grad(wid).as_slice().iter().map(|f| f.to_bits()).collect();

        // Rewritten (optionally also planned) execution. Two steps, so the
        // fold cache exercises both its fill and its verified-hit paths.
        let tape_plan = if use_plan {
            let mplan = plan_with_rewrites(&tr, loss, &[], &rewrites);
            let pf = check_plan_with_rewrites(&tr, loss, &[], &rewrites, &mplan);
            prop_assert!(pf.is_ok(), "checker rejected the memory plan: {:?}", pf.err());
            Some(mplan.tape_plan())
        } else {
            None
        };
        let mut harness = PlanHarness::with_rewrites(tape_plan, rewrites);
        for step in 0..2 {
            let mut tape = harness.begin_step();
            let x = tape.param(&params, xid);
            let w = tape.param(&params, wid);
            let c = tape.constant(cmat.clone());
            let loss_v = random_graph(&mut tape, x, w, c, &ops);
            params.zero_grads();
            let opt_loss = tape.backward_into(loss_v, &mut params);
            prop_assert!(
                ref_loss.to_bits() == opt_loss.to_bits(),
                "step {step}: loss bits diverged: {ref_loss:?} vs {opt_loss:?}"
            );
            let gx: Vec<u32> =
                params.grad(xid).as_slice().iter().map(|f| f.to_bits()).collect();
            let gw: Vec<u32> =
                params.grad(wid).as_slice().iter().map(|f| f.to_bits()).collect();
            prop_assert!(ref_gx == gx, "step {step}: grad(x) bits diverged");
            prop_assert!(ref_gw == gw, "step {step}: grad(w) bits diverged");
            harness.end_step(tape);
        }
    }
}
