//! Row-major dense `f32` matrix and its kernels.

use std::fmt;
use std::ops::{Index, IndexMut, Range};

use crate::sanitize::{Access, OUT, SCRATCH};
use crate::{gemm, parallel, pool};

/// A row-major dense matrix of `f32`.
///
/// All shapes are checked with assertions; shape errors in a GNN are
/// programming errors, not recoverable conditions, so panicking with a
/// precise message is the right contract (it mirrors what `ndarray` and
/// `nalgebra` do for mismatched dimensions).
///
/// Storage comes from the thread's [`crate::BufferPool`] when one is
/// installed (see [`crate::recycle`]); otherwise from the heap. Either way
/// the contents a constructor produces are identical.
#[derive(PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Self { rows: self.rows, cols: self.cols, data: pool::alloc_copied(&self.data) }
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        // With a pool installed every dropped matrix retires its storage for
        // reuse; with none installed this is an ordinary heap free.
        pool::recycle_vec(std::mem::take(&mut self.data));
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{})", self.rows, self.cols)?;
        let max_rows = 6.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:+.4}")).collect();
            writeln!(f, "  [{}{}]", shown.join(", "), if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: pool::alloc_zeroed(rows * cols) }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: pool::alloc_filled(rows * cols, value) }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = pool::alloc_overwritten(rows * cols);
        for r in 0..rows {
            for (c, slot) in data[r * cols..(r + 1) * cols].iter_mut().enumerate() {
                *slot = f(r, c);
            }
        }
        Self { rows, cols, data }
    }

    /// Consumes the matrix and returns its backing storage (used by
    /// [`crate::recycle`] to retire buffers into the installed pool).
    pub fn into_raw_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Creates a `1 × n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n × 1` column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Matrix product `self · rhs`.
    ///
    /// Routed through the packed GEMM subsystem ([`crate::gemm`]): B is
    /// packed once on the dispatching thread, each pool partition packs
    /// its own A rows into a private scratch region and runs the selected
    /// microkernel. Every output element accumulates over `k` ascending in
    /// a fixed register lane — the same per-element reduction order for
    /// any partitioning, so the result is bit-identical to serial
    /// execution. `DGNN_GEMM=scalar` selects the legacy cache-blocked
    /// i-k-j loops instead (historical bit-exact numerics).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} · {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let be = gemm::backend();
        gemm::count_call(be.is_packed(), self.rows, rhs.cols, self.cols);
        if !be.is_packed() {
            return self.matmul_legacy(rhs);
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        // The tile loop overwrites every element, so the output buffer
        // needs no zeroing.
        let mut out = Matrix { rows: m, cols: n, data: pool::alloc_overwritten(m * n) };
        let mut pb = pool::alloc_overwritten(gemm::packed_b_len(k, n));
        gemm::pack_b(&rhs.data, k, n, &mut pb);
        let work = k.saturating_mul(n);
        let (cap, mut scratch) = packed_a_scratch(m, n, work, k);
        let a = &self.data;
        let (pbr, pb_len) = (&pb[..], pb.len());
        let reads = |p: usize, r: &Range<usize>| {
            let used = gemm::packed_a_len(r.len(), k);
            vec![
                Access::read(0, r.start * k..r.end * k),
                Access::read(1, 0..pb_len),
                Access::write(SCRATCH, p * cap..p * cap + used),
                Access::read(SCRATCH, p * cap..p * cap + used),
            ]
        };
        parallel::par_row_chunks_scratch("gemm_nn_packed", &mut out.data, m, n, work, &mut scratch, reads, |rows, chunk, scr| {
            gemm::pack_a(a, k, &rows, scr);
            gemm::tile_loop(be, scr, pbr, k, n, rows.len(), chunk, false);
        });
        pool::recycle_vec(scratch);
        pool::recycle_vec(pb);
        out
    }

    /// The pre-packing scalar `matmul`: cache-blocked i-k-j loops
    /// ([`matmul_rows`]) under the legacy `matmul` partition contract.
    fn matmul_legacy(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let (k, n) = (self.cols, rhs.cols);
        let a = &self.data;
        let b = &rhs.data;
        let reads = |r: &Range<usize>| {
            vec![Access::read(0, r.start * k..r.end * k), Access::read(1, 0..b.len())]
        };
        parallel::par_row_chunks("matmul", &mut out.data, self.rows, n, k.saturating_mul(n), reads, |rows, chunk| {
            matmul_rows(a, b, k, n, &rows, chunk);
        });
        out
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    ///
    /// Partitioned over *output* rows (columns of `self`): every partition
    /// scans all `k` rows of the operands in ascending order, touching only
    /// its own output rows, so accumulation order per element is unchanged
    /// from the serial k-i-j loop.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: {}x{}ᵀ · {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let be = gemm::backend();
        gemm::count_call(be.is_packed(), self.cols, rhs.cols, self.rows);
        if !be.is_packed() {
            return self.matmul_tn_legacy(rhs);
        }
        let (m, c, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix { rows: c, cols: n, data: pool::alloc_overwritten(c * n) };
        let mut pb = pool::alloc_overwritten(gemm::packed_b_len(m, n));
        gemm::pack_b(&rhs.data, m, n, &mut pb);
        let work = m.saturating_mul(n);
        // The reduction dimension here is `m` (rows of `self`).
        let (cap, mut scratch) = packed_a_scratch(c, n, work, m);
        let a = &self.data;
        let (pbr, pb_len) = (&pb[..], pb.len());
        // Each partition reads a *column* band of `self`: elements
        // `k*c + i` for its output rows `i` — a strided span, not a
        // contiguous one (declaring the whole of `a` would be over-broad).
        let reads = |p: usize, r: &Range<usize>| {
            let used = gemm::packed_a_len(r.len(), m);
            vec![
                Access::read_strided(0, r.start, r.len(), c, if r.is_empty() { 0 } else { m }),
                Access::read(1, 0..pb_len),
                Access::write(SCRATCH, p * cap..p * cap + used),
                Access::read(SCRATCH, p * cap..p * cap + used),
            ]
        };
        parallel::par_row_chunks_scratch("gemm_tn_packed", &mut out.data, c, n, work, &mut scratch, reads, |rows, chunk, scr| {
            gemm::pack_at(a, m, c, &rows, scr);
            gemm::tile_loop(be, scr, pbr, m, n, rows.len(), chunk, false);
        });
        pool::recycle_vec(scratch);
        pool::recycle_vec(pb);
        out
    }

    /// The pre-packing scalar `matmul_tn`: serial-order k-i-j loops
    /// ([`matmul_tn_rows`]) under the legacy `matmul_tn` contract.
    fn matmul_tn_legacy(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let (m, c, n) = (self.rows, self.cols, rhs.cols);
        let a = &self.data;
        let b = &rhs.data;
        let reads = |r: &Range<usize>| {
            vec![
                Access::read_strided(0, r.start, r.len(), c, if r.is_empty() { 0 } else { m }),
                Access::read(1, 0..b.len()),
            ]
        };
        parallel::par_row_chunks("matmul_tn", &mut out.data, c, n, m.saturating_mul(n), reads, |rows, chunk| {
            matmul_tn_rows(a, b, m, c, n, &rows, chunk);
        });
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    /// Row-partitioned: each output row is an independent set of dot
    /// products.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} · {}x{}ᵀ shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let be = gemm::backend();
        gemm::count_call(be.is_packed(), self.rows, rhs.rows, self.cols);
        if !be.is_packed() {
            return self.matmul_nt_legacy(rhs);
        }
        let (m, k, jn) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix { rows: m, cols: jn, data: pool::alloc_overwritten(m * jn) };
        let mut pb = pool::alloc_overwritten(gemm::packed_b_len(k, jn));
        gemm::pack_bt(&rhs.data, jn, k, &mut pb);
        let work = k.saturating_mul(jn);
        let (cap, mut scratch) = packed_a_scratch(m, jn, work, k);
        let a = &self.data;
        let (pbr, pb_len) = (&pb[..], pb.len());
        let reads = |p: usize, r: &Range<usize>| {
            let used = gemm::packed_a_len(r.len(), k);
            vec![
                Access::read(0, r.start * k..r.end * k),
                Access::read(1, 0..pb_len),
                Access::write(SCRATCH, p * cap..p * cap + used),
                Access::read(SCRATCH, p * cap..p * cap + used),
            ]
        };
        parallel::par_row_chunks_scratch("gemm_nt_packed", &mut out.data, m, jn, work, &mut scratch, reads, |rows, chunk, scr| {
            gemm::pack_a(a, k, &rows, scr);
            gemm::tile_loop(be, scr, pbr, k, jn, rows.len(), chunk, false);
        });
        pool::recycle_vec(scratch);
        pool::recycle_vec(pb);
        out
    }

    /// The pre-packing scalar `matmul_nt`: per-row dot products
    /// ([`matmul_nt_rows`]) under the legacy `matmul_nt` contract.
    fn matmul_nt_legacy(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let (k, jn) = (self.cols, rhs.rows);
        let a = &self.data;
        let b = &rhs.data;
        let reads = |r: &Range<usize>| {
            vec![Access::read(0, r.start * k..r.end * k), Access::read(1, 0..b.len())]
        };
        parallel::par_row_chunks("matmul_nt", &mut out.data, self.rows, jn, k.saturating_mul(jn), reads, |rows, chunk| {
            matmul_nt_rows(a, b, k, jn, &rows, chunk);
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "add", 2, |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "sub", 2, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul_elem(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "mul_elem", 2, |a, b| a * b)
    }

    /// Elementwise quotient `self ⊘ rhs`. Division by zero follows IEEE
    /// semantics (±∞/NaN); the static auditor's domain check exists to keep
    /// such divisors out of real graphs.
    pub fn div_elem(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, "div_elem", 8, |a, b| a / b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        what: &'static str,
        work_per_elem: usize,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "{what}: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut data = pool::alloc_overwritten(self.data.len());
        let (a, b) = (&self.data, &rhs.data);
        let reads =
            |r: &Range<usize>| vec![Access::read(0, r.clone()), Access::read(1, r.clone())];
        parallel::par_row_chunks(what, &mut data, a.len(), 1, work_per_elem, reads, |range, chunk| {
            for ((o, &x), &y) in chunk.iter_mut().zip(&a[range.clone()]).zip(&b[range]) {
                *o = f(x, y);
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        let b = &rhs.data;
        let reads = |r: &Range<usize>| vec![Access::read(OUT, r.clone()), Access::read(0, r.clone())];
        parallel::par_row_chunks("add_assign", &mut self.data, b.len(), 1, 2, reads, |range, chunk| {
            for (a, &v) in chunk.iter_mut().zip(&b[range]) {
                *a += v;
            }
        });
    }

    /// In-place `self += k * rhs` (AXPY).
    pub fn axpy(&mut self, k: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy: shape mismatch");
        let b = &rhs.data;
        let reads = |r: &Range<usize>| vec![Access::read(OUT, r.clone()), Access::read(0, r.clone())];
        parallel::par_row_chunks("axpy", &mut self.data, b.len(), 1, 2, reads, |range, chunk| {
            for (a, &v) in chunk.iter_mut().zip(&b[range]) {
                *a += k * v;
            }
        });
    }

    /// Scaled copy `k * self`.
    pub fn scale(&self, k: f32) -> Matrix {
        self.map(move |v| v * k)
    }

    /// In-place scaling `self *= k`.
    pub fn scale_assign(&mut self, k: f32) {
        let len = self.data.len();
        let reads = |r: &Range<usize>| vec![Access::read(OUT, r.clone())];
        parallel::par_row_chunks("scale_assign", &mut self.data, len, 1, 2, reads, |_, chunk| {
            for v in chunk {
                *v *= k;
            }
        });
    }

    /// Entry-wise map (cheap-closure cost class; use [`Matrix::map_weighted`]
    /// for transcendental per-element functions).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        self.map_weighted(4, f)
    }

    /// Entry-wise map with an explicit per-element cost weight (in ≈FMA
    /// units) for the parallel planner: expensive scalar functions (`exp`,
    /// `tanh`, …) pass a large weight so they split across workers at
    /// smaller sizes than an `add` would.
    pub fn map_weighted(&self, work_per_elem: usize, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut data = pool::alloc_overwritten(self.data.len());
        let src = &self.data;
        let reads = |r: &Range<usize>| vec![Access::read(0, r.clone())];
        parallel::par_row_chunks("map", &mut data, src.len(), 1, work_per_elem, reads, |range, chunk| {
            for (o, &v) in chunk.iter_mut().zip(&src[range]) {
                *o = f(v);
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds the `1 × cols` row vector `row` to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "add_row_broadcast: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Multiplies every row elementwise by the `1 × cols` row vector `row`.
    pub fn mul_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "mul_row_broadcast: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "mul_row_broadcast: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o *= b;
            }
        }
        out
    }

    /// Multiplies row `i` by the scalar `col[i]` (`col` is `rows × 1`).
    pub fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        assert_eq!(col.cols, 1, "mul_col_broadcast: rhs must be a column vector");
        assert_eq!(col.rows, self.rows, "mul_col_broadcast: height mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let k = col.data[r];
            for o in out.row_mut(r) {
                *o *= k;
            }
        }
        out
    }

    // ---- fused / lowered broadcast kernels --------------------------------
    //
    // The graph optimizer lowers broadcast ops to these single-pass and
    // in-place variants. Each computes exactly one `+` or `*` per element —
    // the same single f32 operation the two-pass (clone, then in-place
    // update) form performs — so the results are bit-identical to the
    // historical kernels above for every input, including NaN/∞ payloads.

    /// Single-pass `self + row` broadcast: writes `self[r][c] + row[c]`
    /// straight into a fresh buffer (no intermediate copy of `self`).
    /// Bit-identical to [`Matrix::add_row_broadcast`].
    pub fn add_row_fused(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "add_row_fused: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "add_row_fused: width mismatch");
        let mut data = pool::alloc_overwritten(self.data.len());
        let (a, b, w) = (&self.data, &row.data, self.cols);
        let reads = |r: &Range<usize>| {
            vec![Access::read(0, r.start * w..r.end * w), Access::read(1, 0..b.len())]
        };
        parallel::par_row_chunks("add_row_fused", &mut data, self.rows, self.cols, self.cols, reads, |range, chunk| {
            for (out_row, a_row) in chunk
                .chunks_exact_mut(w.max(1))
                .zip(a[range.start * w..range.end * w].chunks_exact(w.max(1)))
            {
                for ((o, &x), &y) in out_row.iter_mut().zip(a_row).zip(b) {
                    *o = x + y;
                }
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Single-pass `self ⊙ row` broadcast (see [`Matrix::add_row_fused`]).
    /// Bit-identical to [`Matrix::mul_row_broadcast`].
    pub fn mul_row_fused(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "mul_row_fused: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "mul_row_fused: width mismatch");
        let mut data = pool::alloc_overwritten(self.data.len());
        let (a, b, w) = (&self.data, &row.data, self.cols);
        let reads = |r: &Range<usize>| {
            vec![Access::read(0, r.start * w..r.end * w), Access::read(1, 0..b.len())]
        };
        parallel::par_row_chunks("mul_row_fused", &mut data, self.rows, self.cols, self.cols, reads, |range, chunk| {
            for (out_row, a_row) in chunk
                .chunks_exact_mut(w.max(1))
                .zip(a[range.start * w..range.end * w].chunks_exact(w.max(1)))
            {
                for ((o, &x), &y) in out_row.iter_mut().zip(a_row).zip(b) {
                    *o = x * y;
                }
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Single-pass column broadcast `self[r][c] * col[r]` (see
    /// [`Matrix::add_row_fused`]). Bit-identical to
    /// [`Matrix::mul_col_broadcast`].
    pub fn mul_col_fused(&self, col: &Matrix) -> Matrix {
        assert_eq!(col.cols, 1, "mul_col_fused: rhs must be a column vector");
        assert_eq!(col.rows, self.rows, "mul_col_fused: height mismatch");
        let mut data = pool::alloc_overwritten(self.data.len());
        let (a, b, w) = (&self.data, &col.data, self.cols);
        let reads = |r: &Range<usize>| {
            vec![Access::read(0, r.start * w..r.end * w), Access::read(1, r.clone())]
        };
        parallel::par_row_chunks("mul_col_fused", &mut data, self.rows, self.cols, self.cols, reads, |range, chunk| {
            for ((out_row, a_row), &k) in chunk
                .chunks_exact_mut(w.max(1))
                .zip(a[range.start * w..range.end * w].chunks_exact(w.max(1)))
                .zip(&b[range])
            {
                for (o, &x) in out_row.iter_mut().zip(a_row) {
                    *o = x * k;
                }
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place row broadcast `self[r][c] += row[c]` — the second pass of
    /// [`Matrix::add_row_broadcast`] applied to an owned buffer the
    /// optimizer stole from a dead producer. Bit-identical to the two-pass
    /// form.
    pub fn add_row_assign(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "add_row_assign: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "add_row_assign: width mismatch");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
    }

    /// In-place `self -= rhs`; bit-identical to [`Matrix::sub`] into a
    /// fresh buffer.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        let b = &rhs.data;
        let reads = |r: &Range<usize>| vec![Access::read(OUT, r.clone()), Access::read(0, r.clone())];
        parallel::par_row_chunks("sub_assign", &mut self.data, b.len(), 1, 2, reads, |range, chunk| {
            for (a, &v) in chunk.iter_mut().zip(&b[range]) {
                *a -= v;
            }
        });
    }

    /// In-place `self += k`; bit-identical to the `map(|x| x + k)` form.
    pub fn add_scalar_assign(&mut self, k: f32) {
        let len = self.data.len();
        let reads = |r: &Range<usize>| vec![Access::read(OUT, r.clone())];
        parallel::par_row_chunks("add_scalar_assign", &mut self.data, len, 1, 2, reads, |_, chunk| {
            for v in chunk {
                *v += k;
            }
        });
    }

    /// Fused gradient accumulation `self += g · rhsᵀ`.
    ///
    /// Each `g·rhsᵀ` element is an independent dot product accumulated in a
    /// register from `0.0` — exactly as [`Matrix::matmul_nt`] computes it —
    /// and then added to `self[i][j]` with one `+`, exactly as
    /// `add_assign(&g.matmul_nt(rhs))` would. The two forms are therefore
    /// bit-identical; fusing only skips the temporary.
    pub fn matmul_nt_acc(&mut self, g: &Matrix, rhs: &Matrix) {
        assert_eq!(g.cols, rhs.cols, "matmul_nt_acc: inner dim mismatch");
        assert_eq!(
            self.shape(),
            (g.rows, rhs.rows),
            "matmul_nt_acc: accumulator is {}x{}, product is {}x{}",
            self.rows,
            self.cols,
            g.rows,
            rhs.rows
        );
        let be = gemm::backend();
        gemm::count_call(be.is_packed(), g.rows, rhs.rows, g.cols);
        if !be.is_packed() {
            return self.matmul_nt_acc_legacy(g, rhs);
        }
        let (m, k, jn) = (g.rows, g.cols, rhs.rows);
        let mut pb = pool::alloc_overwritten(gemm::packed_b_len(k, jn));
        gemm::pack_bt(&rhs.data, jn, k, &mut pb);
        let work = k.saturating_mul(jn);
        let (cap, mut scratch) = packed_a_scratch(m, jn, work, k);
        let a = &g.data;
        let (pbr, pb_len) = (&pb[..], pb.len());
        let reads = |p: usize, r: &Range<usize>| {
            let used = gemm::packed_a_len(r.len(), k);
            vec![
                Access::read(OUT, r.start * jn..r.end * jn),
                Access::read(0, r.start * k..r.end * k),
                Access::read(1, 0..pb_len),
                Access::write(SCRATCH, p * cap..p * cap + used),
                Access::read(SCRATCH, p * cap..p * cap + used),
            ]
        };
        parallel::par_row_chunks_scratch("gemm_nt_acc_packed", &mut self.data, m, jn, work, &mut scratch, reads, |rows, chunk, scr| {
            gemm::pack_a(a, k, &rows, scr);
            gemm::tile_loop(be, scr, pbr, k, jn, rows.len(), chunk, true);
        });
        pool::recycle_vec(scratch);
        pool::recycle_vec(pb);
    }

    /// The pre-packing scalar `matmul_nt_acc`: fused dot-then-add loops
    /// under the legacy `matmul_nt_acc` contract.
    fn matmul_nt_acc_legacy(&mut self, g: &Matrix, rhs: &Matrix) {
        let (k, jn) = (g.cols, rhs.rows);
        let a = &g.data;
        let b = &rhs.data;
        let reads = |r: &Range<usize>| {
            vec![
                Access::read(OUT, r.start * jn..r.end * jn),
                Access::read(0, r.start * k..r.end * k),
                Access::read(1, 0..b.len()),
            ]
        };
        parallel::par_row_chunks("matmul_nt_acc", &mut self.data, g.rows, jn, k.saturating_mul(jn), reads, |rows, out| {
            for (off, i) in rows.enumerate() {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[off * jn..(off + 1) * jn];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *o += acc;
                }
            }
        });
    }

    /// Fused `gather(self, idx) · rhs` without materializing the gathered
    /// matrix: output row `i` is `self.row(idx[i]) · rhs`, computed with the
    /// same cache-blocked k-ascending microkernel as [`Matrix::matmul`] —
    /// bit-identical to `self.gather_rows(idx).matmul(rhs)`.
    pub fn gather_matmul(&self, idx: &[usize], rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "gather_matmul: {}x{} · {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        for &r in idx {
            assert!(r < self.rows, "gather_matmul: index {r} out of bounds ({} rows)", self.rows);
        }
        let be = gemm::backend();
        gemm::count_call(be.is_packed(), idx.len(), rhs.cols, self.cols);
        if !be.is_packed() {
            return self.gather_matmul_legacy(idx, rhs);
        }
        let (k, n) = (self.cols, rhs.cols);
        let m = idx.len();
        let mut out = Matrix { rows: m, cols: n, data: pool::alloc_overwritten(m * n) };
        let mut pb = pool::alloc_overwritten(gemm::packed_b_len(k, n));
        gemm::pack_b(&rhs.data, k, n, &mut pb);
        let work = k.saturating_mul(n);
        let (cap, mut scratch) = packed_a_scratch(m, n, work, k);
        let a = &self.data;
        let (pbr, pb_len) = (&pb[..], pb.len());
        // Gathered rows are data-dependent, so the table read is honestly
        // whole-buffer; the index list itself is read per-partition.
        let reads = |p: usize, r: &Range<usize>| {
            let used = gemm::packed_a_len(r.len(), k);
            vec![
                Access::read(0, 0..a.len()),
                Access::read(1, 0..pb_len),
                Access::read(2, r.clone()),
                Access::write(SCRATCH, p * cap..p * cap + used),
                Access::read(SCRATCH, p * cap..p * cap + used),
            ]
        };
        parallel::par_row_chunks_scratch("gemm_gather_nn_packed", &mut out.data, m, n, work, &mut scratch, reads, |rows, chunk, scr| {
            gemm::pack_a_gathered(a, idx, k, &rows, scr);
            gemm::tile_loop(be, scr, pbr, k, n, rows.len(), chunk, false);
        });
        pool::recycle_vec(scratch);
        pool::recycle_vec(pb);
        out
    }

    /// The pre-packing scalar `gather_matmul` under the legacy contract.
    fn gather_matmul_legacy(&self, idx: &[usize], rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), rhs.cols);
        let (k, n) = (self.cols, rhs.cols);
        let a = &self.data;
        let b = &rhs.data;
        let reads = |r: &Range<usize>| {
            vec![
                Access::read(0, 0..a.len()),
                Access::read(1, 0..b.len()),
                Access::read(2, r.clone()),
            ]
        };
        parallel::par_row_chunks("gather_matmul", &mut out.data, idx.len(), n, k.saturating_mul(n), reads, |rows, chunk| {
            matmul_gathered_rows(a, b, idx, k, n, &rows, chunk);
        });
        out
    }

    /// Fused `gather(self, idx) · rhsᵀ` without materializing the gathered
    /// matrix: output row `i` is `self.row(idx[i]) · rhsᵀ`. On a packed
    /// backend the gathered rows are packed straight from the table into
    /// per-partition A panels; on the scalar backend this delegates to
    /// `gather_rows(idx).matmul_nt(rhs)` (which it is bit-identical to on
    /// every backend).
    pub fn gather_matmul_nt(&self, idx: &[usize], rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "gather_matmul_nt: {}x{} · {}x{}ᵀ shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        for &r in idx {
            assert!(r < self.rows, "gather_matmul_nt: index {r} out of bounds ({} rows)", self.rows);
        }
        let be = gemm::backend();
        if !be.is_packed() {
            // `matmul_nt` records its own call counters — no count here.
            return self.gather_rows(idx).matmul_nt(rhs);
        }
        gemm::count_call(true, idx.len(), rhs.rows, self.cols);
        let (k, jn) = (self.cols, rhs.rows);
        let m = idx.len();
        let mut out = Matrix { rows: m, cols: jn, data: pool::alloc_overwritten(m * jn) };
        let mut pb = pool::alloc_overwritten(gemm::packed_b_len(k, jn));
        gemm::pack_bt(&rhs.data, jn, k, &mut pb);
        let work = k.saturating_mul(jn);
        let (cap, mut scratch) = packed_a_scratch(m, jn, work, k);
        let a = &self.data;
        let (pbr, pb_len) = (&pb[..], pb.len());
        let reads = |p: usize, r: &Range<usize>| {
            let used = gemm::packed_a_len(r.len(), k);
            vec![
                Access::read(0, 0..a.len()),
                Access::read(1, 0..pb_len),
                Access::read(2, r.clone()),
                Access::write(SCRATCH, p * cap..p * cap + used),
                Access::read(SCRATCH, p * cap..p * cap + used),
            ]
        };
        parallel::par_row_chunks_scratch("gemm_gather_nt_packed", &mut out.data, m, jn, work, &mut scratch, reads, |rows, chunk, scr| {
            gemm::pack_a_gathered(a, idx, k, &rows, scr);
            gemm::tile_loop(be, scr, pbr, k, jn, rows.len(), chunk, false);
        });
        pool::recycle_vec(scratch);
        pool::recycle_vec(pb);
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries; zero for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// `rows × 1` vector of per-row sums.
    pub fn row_sums(&self) -> Matrix {
        let mut data = pool::alloc_overwritten(self.rows);
        for (r, o) in data.iter_mut().enumerate() {
            *o = self.row(r).iter().sum();
        }
        Matrix { rows: self.rows, cols: 1, data }
    }

    /// `1 × cols` vector of per-column sums.
    pub fn col_sums(&self) -> Matrix {
        let mut data = pool::alloc_zeroed(self.cols);
        for r in 0..self.rows {
            for (acc, &v) in data.iter_mut().zip(self.row(r)) {
                *acc += v;
            }
        }
        Matrix { rows: 1, cols: self.cols, data }
    }

    /// `rows × 1` vector of per-row dot products with the matching row of
    /// `rhs` (i.e. `sum(self ⊙ rhs, axis=1)`).
    pub fn row_dots(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "row_dots: shape mismatch");
        let mut data = pool::alloc_overwritten(self.rows);
        for (r, o) in data.iter_mut().enumerate() {
            *o = self.row(r).iter().zip(rhs.row(r)).map(|(&a, &b)| a * b).sum();
        }
        Matrix { rows: self.rows, cols: 1, data }
    }

    /// Squared Frobenius norm `Σ v²`.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Concatenates matrices left-to-right (all must share a row count).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: need at least one part");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "concat_cols: row count mismatch"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let out_row = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                out_row[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Vertically stacks matrices (all must share a column count).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: need at least one part");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "concat_rows: column count mismatch"
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = pool::alloc_overwritten(rows * cols);
        let mut off = 0;
        for p in parts {
            data[off..off + p.data.len()].copy_from_slice(&p.data);
            off += p.data.len();
        }
        Matrix { rows, cols, data }
    }

    /// Copy of the column range `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols: bad range {start}..{end}");
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// New matrix whose rows are `self.row(idx[i])` (embedding lookup).
    /// Row-partitioned: each output row is an independent copy.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        for &r in idx {
            assert!(r < self.rows, "gather_rows: index {r} out of bounds ({} rows)", self.rows);
        }
        let mut out = Matrix::zeros(idx.len(), self.cols);
        let cols = self.cols;
        let src = &self.data;
        let reads =
            |r: &Range<usize>| vec![Access::read(0, 0..src.len()), Access::read(1, r.clone())];
        parallel::par_row_chunks("gather_rows", &mut out.data, idx.len(), cols, cols, reads, |range, chunk| {
            for (off, i) in range.enumerate() {
                let r = idx[i];
                chunk[off * cols..(off + 1) * cols]
                    .copy_from_slice(&src[r * cols..(r + 1) * cols]);
            }
        });
        out
    }

    /// Scatter-add: `self.row(idx[i]) += src.row(i)` for every `i`.
    /// Duplicate indices accumulate.
    ///
    /// Partitioned over *destination* rows: each partition scans the full
    /// index list in order and applies only the updates landing in its row
    /// range, so duplicates still accumulate in index order within every
    /// destination row — bit-identical to the serial pass.
    pub fn scatter_add_rows(&mut self, idx: &[usize], src: &Matrix) {
        assert_eq!(idx.len(), src.rows, "scatter_add_rows: index/src mismatch");
        assert_eq!(self.cols, src.cols, "scatter_add_rows: width mismatch");
        for &r in idx {
            assert!(r < self.rows, "scatter_add_rows: index {r} out of bounds");
        }
        let (rows, cols) = (self.rows, self.cols);
        let src_data = &src.data;
        // Per-partition cost is one idx scan plus this partition's share of
        // the row updates; estimate the latter as evenly spread.
        let work = (idx.len().saturating_mul(cols.max(1)) / rows.max(1)).max(1);
        // Every partition scans the whole index list and source (filtering
        // to its own destination rows), so those reads really are global;
        // the read-modify-write half of the update stays partition-local.
        let idx_len = idx.len();
        let reads = |r: &Range<usize>| {
            vec![
                Access::read(OUT, r.start * cols..r.end * cols),
                Access::read(0, 0..idx_len),
                Access::read(1, 0..src_data.len()),
            ]
        };
        parallel::par_row_chunks("scatter_add_rows", &mut self.data, rows, cols, work, reads, |range, chunk| {
            for (i, &r) in idx.iter().enumerate() {
                if range.contains(&r) {
                    let off = (r - range.start) * cols;
                    let dst = &mut chunk[off..off + cols];
                    for (d, &s) in dst.iter_mut().zip(&src_data[i * cols..(i + 1) * cols]) {
                        *d += s;
                    }
                }
            }
        });
    }

    /// Row-wise L2 normalization; rows with norm below `eps` are left
    /// unchanged (avoids dividing by ~0 for never-touched embeddings).
    /// Row-partitioned: every row normalizes independently.
    pub fn l2_normalize_rows(&self, eps: f32) -> Matrix {
        let mut out = self.clone();
        let cols = self.cols;
        let reads = |r: &Range<usize>| vec![Access::read(OUT, r.start * cols..r.end * cols)];
        parallel::par_row_chunks("l2_normalize_rows", &mut out.data, self.rows, cols, 4 * cols.max(1), reads, |_, chunk| {
            for row in chunk.chunks_exact_mut(cols.max(1)) {
                let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
                if norm > eps {
                    for v in row {
                        *v /= norm;
                    }
                }
            }
        });
        out
    }

    /// Row-wise softmax. Row-partitioned: every row is an independent
    /// stable softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        let cols = self.cols;
        let reads = |r: &Range<usize>| vec![Access::read(OUT, r.start * cols..r.end * cols)];
        parallel::par_row_chunks("softmax_rows", &mut out.data, self.rows, cols, 16 * cols.max(1), reads, |_, chunk| {
            for row in chunk.chunks_exact_mut(cols.max(1)) {
                softmax_in_place(row);
            }
        });
        out
    }

    /// Row-wise layer normalization `(x − mean) / √(var + eps)`.
    /// Row-partitioned: every row normalizes independently.
    pub fn layer_norm_rows(&self, eps: f32) -> Matrix {
        let mut out = self.clone();
        let cols = self.cols;
        let reads = |r: &Range<usize>| vec![Access::read(OUT, r.start * cols..r.end * cols)];
        parallel::par_row_chunks("layer_norm_rows", &mut out.data, self.rows, cols, 8 * cols.max(1), reads, |_, chunk| {
            for row in chunk.chunks_exact_mut(cols.max(1)) {
                layer_norm_in_place(row, eps);
            }
        });
        out
    }

    /// Gradient of [`Matrix::layer_norm_rows`]: standard LayerNorm
    /// backward `dx = (g − mean(g) − y·mean(g⊙y)) / σ`, where `x` is the
    /// forward input, `y` the forward output, and `g` the upstream
    /// gradient. Row-partitioned like the forward pass.
    pub fn layer_norm_rows_grad(x: &Matrix, y: &Matrix, g: &Matrix, eps: f32) -> Matrix {
        assert_eq!(x.shape(), y.shape(), "layer_norm_rows_grad: x/y shape mismatch");
        assert_eq!(x.shape(), g.shape(), "layer_norm_rows_grad: x/g shape mismatch");
        let (rows, cols) = x.shape();
        let mut out = Matrix::zeros(rows, cols);
        let (xd, yd, gd) = (&x.data, &y.data, &g.data);
        let reads = |r: &Range<usize>| {
            vec![
                Access::read(0, r.start * cols..r.end * cols),
                Access::read(1, r.start * cols..r.end * cols),
                Access::read(2, r.start * cols..r.end * cols),
            ]
        };
        parallel::par_row_chunks("layer_norm_rows_grad", &mut out.data, rows, cols, 12 * cols.max(1), reads, |range, chunk| {
            for (off, r) in range.enumerate() {
                let lo = r * cols;
                layer_norm_grad_row(
                    &xd[lo..lo + cols],
                    &yd[lo..lo + cols],
                    &gd[lo..lo + cols],
                    eps,
                    &mut chunk[off * cols..(off + 1) * cols],
                );
            }
        });
        out
    }

    /// Leaky ReLU `max(x, 0) + α·min(x, 0)`.
    ///
    /// Branchless on sign-random activations (the naïve `if x >= 0.0`
    /// form mispredicts ~half the time and dominated the forward profile);
    /// a NaN input yields `α·NaN = NaN` only through the `min` term when
    /// `α != 0`, and the tape's finite checks exist to catch NaN upstream.
    pub fn leaky_relu(&self, alpha: f32) -> Matrix {
        self.map_weighted(4, move |x| x.max(0.0) + alpha * x.min(0.0))
    }

    /// Gradient of [`Matrix::leaky_relu`]: `g ⊙ (x ≥ 0 ? 1 : α)` where
    /// `self` is the forward *input* `x`. Fused (no slope matrix is
    /// materialized) but multiplies in the same order as
    /// `slope.mul_elem(g)` would, so bits match the unfused form.
    pub fn leaky_relu_grad(&self, g: &Matrix, alpha: f32) -> Matrix {
        g.zip_with(self, "leaky_relu_grad", 4, move |gv, x| {
            gv * if x >= 0.0 { 1.0 } else { alpha }
        })
    }

    /// Gradient of ReLU: `g ⊙ (x > 0 ? 1 : 0)` where `self` is the
    /// forward *input* `x`.
    pub fn relu_grad(&self, g: &Matrix) -> Matrix {
        g.zip_with(self, "relu_grad", 4, |gv, x| gv * if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Gradient of tanh given the forward *output* `t = tanh(x)` as
    /// `self`: `g ⊙ (1 − t²)`.
    pub fn tanh_grad(&self, g: &Matrix) -> Matrix {
        g.zip_with(self, "tanh_grad", 4, |gv, t| gv * (1.0 - t * t))
    }

    /// Gradient of the logistic sigmoid given the forward *output*
    /// `s = σ(x)` as `self`: `g ⊙ s(1 − s)`.
    pub fn sigmoid_grad(&self, g: &Matrix) -> Matrix {
        g.zip_with(self, "sigmoid_grad", 4, |gv, s| gv * (s * (1.0 - s)))
    }

    /// Gradient of softplus given the forward *input* `x` as `self`:
    /// `g ⊙ σ(x)`.
    pub fn softplus_grad(&self, g: &Matrix) -> Matrix {
        g.zip_with(self, "softplus_grad", 32, |gv, x| gv * stable_sigmoid(x))
    }

    /// True when every entry is finite (no NaN/∞) — used as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Sizes the dispatcher-side A-panel scratch for a packed GEMM over `rows`
/// output rows of width `cols` with reduction length `k`: one
/// `packed_a_len(max_span, k)`-float region per planned partition, where
/// `max_span = rows.div_ceil(parts)` bounds any [`parallel::part_range`]
/// span. Uses the same [`parallel::planned_row_parts`] plan the dispatch
/// itself will compute, so the region count can never disagree. Returns
/// `(per-partition capacity, scratch buffer)`.
fn packed_a_scratch(rows: usize, cols: usize, work_per_row: usize, k: usize) -> (usize, Vec<f32>) {
    let parts = parallel::planned_row_parts(rows, cols, work_per_row);
    let cap = gemm::packed_a_len(rows.div_ceil(parts), k);
    (cap, pool::alloc_overwritten(parts * cap))
}

/// Cache-blocked i-k-j GEMM microkernel over one span of output rows.
///
/// `out` covers exactly rows `rows` of the full product (row-major,
/// already zeroed). Blocking the `k` loop keeps ≲`K_BLOCK` rows of `b`
/// hot in cache while the row span streams over them; every output
/// element still accumulates over `k` strictly ascending (blocks iterate
/// in order), so the result is bit-identical to the unblocked loop. The
/// `a_ik == 0.0` skip is kept from the original kernel: it preserves
/// historical signed-zero behavior and sparse gradients are common here.
fn matmul_rows(a: &[f32], b: &[f32], k: usize, n: usize, rows: &Range<usize>, out: &mut [f32]) {
    /// Rows of `b` per cache block (`64 × n × 4` bytes ≈ L1-sized for the
    /// dims this repo trains at).
    const K_BLOCK: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + K_BLOCK).min(k);
        for (off, i) in rows.clone().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[off * n..(off + 1) * n];
            for (kk, &a_ik) in a_row[k0..k1].iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * bv;
                }
            }
        }
        k0 = k1;
    }
}

/// [`matmul_rows`] over *gathered* operand rows: row `i` of the virtual
/// left operand is `a.row(idx[i])`. Identical blocking, k-ascending
/// accumulation, and zero-skip as [`matmul_rows`], so the output is
/// bit-identical to materializing the gather first.
fn matmul_gathered_rows(
    a: &[f32],
    b: &[f32],
    idx: &[usize],
    k: usize,
    n: usize,
    rows: &Range<usize>,
    out: &mut [f32],
) {
    const K_BLOCK: usize = 64;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + K_BLOCK).min(k);
        for (off, i) in rows.clone().enumerate() {
            let src = idx[i];
            let a_row = &a[src * k..(src + 1) * k];
            let out_row = &mut out[off * n..(off + 1) * n];
            for (kk, &a_ik) in a_row[k0..k1].iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * bv;
                }
            }
        }
        k0 = k1;
    }
}

/// `aᵀ · b` microkernel over one span of output rows (columns `rows` of
/// `a`). Scans all `m` operand rows ascending — the serial loop order —
/// touching only its own output rows.
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    m: usize,
    c: usize,
    n: usize,
    rows: &Range<usize>,
    out: &mut [f32],
) {
    for k in 0..m {
        let a_row = &a[k * c..(k + 1) * c];
        let b_row = &b[k * n..(k + 1) * n];
        for (off, i) in rows.clone().enumerate() {
            let a_ki = a_row[i];
            if a_ki == 0.0 {
                continue;
            }
            let out_row = &mut out[off * n..(off + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ki * bv;
            }
        }
    }
}

/// `a · bᵀ` microkernel over one span of output rows: independent dot
/// products, one per output element.
fn matmul_nt_rows(
    a: &[f32],
    b: &[f32],
    k: usize,
    jn: usize,
    rows: &Range<usize>,
    out: &mut [f32],
) {
    for (off, i) in rows.clone().enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[off * jn..(off + 1) * jn];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

/// Logistic sigmoid that never overflows `exp`, shared by the tape's
/// `sigmoid` forward and [`Matrix::softplus_grad`].
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// One row of LayerNorm forward, in place.
fn layer_norm_in_place(row: &mut [f32], eps: f32) {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv_std = 1.0 / (var + eps).sqrt();
    for v in row {
        *v = (*v - mean) * inv_std;
    }
}

/// One row of LayerNorm backward: `dx = (g − mean(g) − y·mean(g⊙y)) / σ`.
fn layer_norm_grad_row(x: &[f32], y: &[f32], g: &[f32], eps: f32, out: &mut [f32]) {
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv_std = 1.0 / (var + eps).sqrt();
    let g_mean = g.iter().sum::<f32>() / n;
    let gy_mean = g.iter().zip(y).map(|(&g, &y)| g * y).sum::<f32>() / n;
    for k in 0..x.len() {
        out[k] = (g[k] - g_mean - y[k] * gy_mean) * inv_std;
    }
}

/// Numerically-stable softmax over a mutable slice.
pub(crate) fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in xs {
            *v /= sum;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn zeros_and_shape() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.len(), 12);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(a[(1, 2)], 12.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(2, 2, &[1.5, -2.0, 0.25, 3.0]);
        assert!(approx_eq(&a.matmul(&Matrix::eye(2)), &a, 0.0));
        assert!(approx_eq(&Matrix::eye(2).matmul(&a), &a, 0.0));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[0.5, -1.0, 2.0, 0.0, 1.0, 1.0]);
        assert!(approx_eq(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &[1.0; 12]);
        assert!(approx_eq(&a.matmul_nt(&b), &a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn transpose_twice_roundtrips() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(approx_eq(&a.transpose().transpose(), &a, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul_elem(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        a.axpy(2.0, &m(1, 2, &[3.0, -1.0]));
        assert_eq!(a.as_slice(), &[7.0, -1.0]);
    }

    #[test]
    fn broadcasts() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let row = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&row).as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.mul_row_broadcast(&row).as_slice(), &[10.0, 40.0, 30.0, 80.0]);
        let col = Matrix::col_vector(&[2.0, -1.0]);
        assert_eq!(a.mul_col_broadcast(&col).as_slice(), &[2.0, 4.0, -3.0, -4.0]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sum(), 21.0);
        assert!((a.mean() - 3.5).abs() < 1e-6);
        assert_eq!(a.row_sums().as_slice(), &[6.0, 15.0]);
        assert_eq!(a.col_sums().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sq_norm(), 91.0);
    }

    #[test]
    fn row_dots_matches_manual() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.row_dots(&b).as_slice(), &[17.0, 53.0]);
    }

    #[test]
    fn concat_cols_and_slice_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        assert!(approx_eq(&c.slice_cols(0, 2), &a, 0.0));
        assert!(approx_eq(&c.slice_cols(2, 3), &b, 0.0));
    }

    #[test]
    fn concat_rows_stacks() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_and_scatter_are_adjoint_on_duplicates() {
        let table = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let idx = [2, 0, 2];
        let g = table.gather_rows(&idx);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(2), &[5.0, 6.0]);
        let mut acc = Matrix::zeros(3, 2);
        acc.scatter_add_rows(&idx, &g);
        // Row 2 was gathered twice, so it accumulates twice.
        assert_eq!(acc.row(2), &[10.0, 12.0]);
        assert_eq!(acc.row(0), &[1.0, 2.0]);
        assert_eq!(acc.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let a = m(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        let n = a.l2_normalize_rows(1e-12);
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        // Zero row untouched, not NaN.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_shift_invariant() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[1001.0, 1002.0, 1003.0]);
        let sa = a.softmax_rows();
        let sb = b.softmax_rows();
        assert!((sa.sum() - 1.0).abs() < 1e-5);
        assert!(approx_eq(&sa, &sb, 1e-5));
        assert!(sa.all_finite());
    }

    #[test]
    fn map_and_scale() {
        let a = m(1, 3, &[-1.0, 0.0, 2.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 0.0, 2.0]);
        assert_eq!(a.scale(-2.0).as_slice(), &[2.0, 0.0, -4.0]);
    }

    #[test]
    fn leaky_relu_matches_branchy_definition() {
        let a = m(1, 5, &[-2.0, -0.5, 0.0, 0.5, 3.0]);
        let alpha = 0.2;
        let got = a.leaky_relu(alpha);
        let want = a.map(|x| if x >= 0.0 { x } else { alpha * x });
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.to_bits(), w.to_bits(), "branchless form must match the definition");
        }
    }

    #[test]
    fn activation_grads_match_unfused_forms() {
        let x = m(2, 3, &[-1.5, -0.1, 0.0, 0.3, 2.0, -4.0]);
        let g = m(2, 3, &[1.0, -2.0, 0.5, 3.0, -0.25, 1.5]);
        let alpha = 0.1;
        let slope = x.map(|v| if v >= 0.0 { 1.0 } else { alpha });
        assert_eq!(x.leaky_relu_grad(&g, alpha), g.mul_elem(&slope));
        let t = x.map(f32::tanh);
        assert_eq!(t.tanh_grad(&g), g.mul_elem(&t.map(|t| 1.0 - t * t)));
        let sp_slope = x.map(stable_sigmoid);
        assert_eq!(x.softplus_grad(&g), g.mul_elem(&sp_slope));
        let s = x.map(stable_sigmoid);
        assert_eq!(s.sigmoid_grad(&g), g.mul_elem(&s.map(|s| s * (1.0 - s))));
        let rs = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        assert_eq!(x.relu_grad(&g), g.mul_elem(&rs));
    }

    #[test]
    fn layer_norm_rows_zero_mean_unit_var() {
        let a = m(2, 4, &[1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 2.0]);
        let y = a.layer_norm_rows(1e-5);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_grad_matches_finite_difference() {
        let eps = 1e-5;
        let x = m(1, 4, &[0.4, -1.2, 2.0, 0.1]);
        let y = x.layer_norm_rows(eps);
        let g = m(1, 4, &[1.0, -0.5, 0.25, 2.0]);
        let ga = Matrix::layer_norm_rows_grad(&x, &y, &g, eps);
        let h = 1e-3;
        for k in 0..4 {
            let mut xp = x.clone();
            xp[(0, k)] += h;
            let mut xm = x.clone();
            xm[(0, k)] -= h;
            let lp: f32 =
                xp.layer_norm_rows(eps).row(0).iter().zip(g.row(0)).map(|(&a, &b)| a * b).sum();
            let lm: f32 =
                xm.layer_norm_rows(eps).row(0).iter().zip(g.row(0)).map(|(&a, &b)| a * b).sum();
            let fd = (lp - lm) / (2.0 * h);
            assert!((ga[(0, k)] - fd).abs() < 1e-2, "k={k}: {} vs fd {fd}", ga[(0, k)]);
        }
    }

    // ---- fused / lowered kernel bit-identity -----------------------------

    /// Sign-mixed, denormal-adjacent values that expose any reassociation
    /// or rounding-path difference between two kernels.
    fn awkward(rows: usize, cols: usize, salt: u32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = ((r * 31 + c * 7 + salt as usize) % 97) as f32 - 48.0;
            x * 0.318_309_9 + 1.0e-7 * (c as f32)
        })
    }

    fn assert_bits(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn fused_broadcasts_match_two_pass_forms_bitwise() {
        let a = awkward(9, 5, 3);
        let row = awkward(1, 5, 11);
        let col = awkward(9, 1, 17);
        assert_bits(&a.add_row_fused(&row), &a.add_row_broadcast(&row), "add_row");
        assert_bits(&a.mul_row_fused(&row), &a.mul_row_broadcast(&row), "mul_row");
        assert_bits(&a.mul_col_fused(&col), &a.mul_col_broadcast(&col), "mul_col");
    }

    #[test]
    fn in_place_variants_match_out_of_place_bitwise() {
        let a = awkward(7, 4, 5);
        let b = awkward(7, 4, 23);
        let row = awkward(1, 4, 29);

        let mut stolen = a.clone();
        stolen.add_row_assign(&row);
        assert_bits(&stolen, &a.add_row_broadcast(&row), "add_row_assign");

        let mut stolen = a.clone();
        stolen.sub_assign(&b);
        assert_bits(&stolen, &a.sub(&b), "sub_assign");

        let mut stolen = a.clone();
        stolen.add_scalar_assign(0.37);
        assert_bits(&stolen, &a.map(|x| x + 0.37), "add_scalar_assign");

        let mut stolen = a.clone();
        stolen.scale_assign(-1.0);
        assert_bits(&stolen, &a.scale(-1.0), "neg via scale_assign");
    }

    #[test]
    fn matmul_nt_acc_matches_temp_then_add_bitwise() {
        let g = awkward(6, 5, 41);
        let b = awkward(8, 5, 43);
        let acc0 = awkward(6, 8, 47);

        let mut fused = acc0.clone();
        fused.matmul_nt_acc(&g, &b);
        let mut two_step = acc0.clone();
        two_step.add_assign(&g.matmul_nt(&b));
        assert_bits(&fused, &two_step, "matmul_nt_acc");
    }

    #[test]
    fn gather_matmul_matches_gather_then_matmul_bitwise() {
        let table = awkward(10, 6, 53);
        let w = awkward(6, 4, 59);
        let idx = [3usize, 0, 9, 3, 7];
        assert_bits(
            &table.gather_matmul(&idx, &w),
            &table.gather_rows(&idx).matmul(&w),
            "gather_matmul",
        );
    }

    #[test]
    fn fused_kernels_handle_zero_width() {
        let a = Matrix::zeros(3, 0);
        let row = Matrix::zeros(1, 0);
        let col = Matrix::zeros(3, 1);
        assert_eq!(a.add_row_fused(&row).shape(), (3, 0));
        assert_eq!(a.mul_row_fused(&row).shape(), (3, 0));
        assert_eq!(a.mul_col_fused(&col).shape(), (3, 0));
    }
}
