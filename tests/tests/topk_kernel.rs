//! Property tests for the heap-based partial top-K kernel: selection must
//! equal the prefix of a full argsort under the same total order (score
//! descending, index ascending on ties — the order that makes serving
//! deterministic and lets a batch select at `k_max` and truncate per
//! request), and the row-parallel path must be bit-identical to serial.

use dgnn_tensor::{parallel, top_k_row, top_k_rows, Matrix};
use proptest::prelude::*;

/// Full argsort under the kernel's total order; the reference the partial
/// select must prefix-match.
fn argsort_desc(scores: &[f32]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_by(|&a, &b| {
        scores[b as usize].total_cmp(&scores[a as usize]).then(a.cmp(&b))
    });
    order
}

fn with_pool<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    parallel::set_threads(threads);
    parallel::set_min_par_work(if threads > 1 { 1 } else { parallel::DEFAULT_MIN_PAR_WORK });
    let out = f();
    parallel::set_threads(1);
    parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
    out
}

/// Quantized scores (4 distinct values over up to 48 entries) force heavy
/// ties, the regime where a sloppy comparator would diverge from the
/// reference order. The vendored proptest has no `i32` range strategy, so
/// quantize from `u32`.
fn tied_scores() -> impl Strategy<Value = Vec<f32>> {
    collection::vec(0u32..4, 1..48).prop_map(|qs| {
        qs.into_iter().map(|q| q as f32 * 0.25 - 0.5).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topk_equals_argsort_prefix(scores in tied_scores(), k in 1usize..60) {
        let k = k.min(scores.len());
        let mut idx = vec![0u32; k];
        let mut sel = vec![0f32; k];
        top_k_row(&scores, &mut idx, &mut sel);
        let reference = argsort_desc(&scores);
        prop_assert_eq!(&idx, &reference[..k]);
        for (i, &s) in idx.iter().zip(&sel) {
            prop_assert_eq!(scores[*i as usize].to_bits(), s.to_bits());
        }
    }

    /// Top-k is a prefix of top-(k+1): the property the micro-batcher
    /// relies on to select once at the batch's max k and truncate each
    /// request's answer.
    #[test]
    fn topk_is_prefix_of_larger_k(scores in tied_scores(), k in 1usize..40) {
        let k = k.min(scores.len() - 1).max(1);
        if k + 1 > scores.len() {
            return Ok(());
        }
        let mut idx_k = vec![0u32; k];
        let mut sel_k = vec![0f32; k];
        top_k_row(&scores, &mut idx_k, &mut sel_k);
        let mut idx_k1 = vec![0u32; k + 1];
        let mut sel_k1 = vec![0f32; k + 1];
        top_k_row(&scores, &mut idx_k1, &mut sel_k1);
        prop_assert_eq!(&idx_k[..], &idx_k1[..k]);
    }

    #[test]
    fn parallel_rowwise_selection_is_bit_identical(
        rows in 1usize..12,
        qs in collection::vec(0u32..8, 12 * 31),
        k in 1usize..31,
        threads in 2usize..6,
    ) {
        let cols = 31;
        let data: Vec<f32> = qs[..rows * cols]
            .iter()
            .map(|&q| q as f32 * 0.125 - 0.5)
            .collect();
        let m = Matrix::from_vec(rows, cols, data);
        let serial = with_pool(1, || top_k_rows(&m, k));
        let parallel_run = with_pool(threads, || top_k_rows(&m, k));
        for r in 0..rows {
            prop_assert_eq!(serial.indices(r), parallel_run.indices(r));
            let a: Vec<u32> = serial.scores(r).iter().map(|s| s.to_bits()).collect();
            let b: Vec<u32> = parallel_run.scores(r).iter().map(|s| s.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }
}

/// Special values follow `total_cmp`'s total order (positive NaN above
/// +inf, -0.0 below +0.0) — and nothing panics.
#[test]
fn non_finite_scores_follow_total_order() {
    let scores =
        [f32::NAN, 1.0, f32::INFINITY, f32::NEG_INFINITY, -0.0, 0.0, f32::NAN];
    let mut idx = vec![0u32; scores.len()];
    let mut sel = vec![0f32; scores.len()];
    top_k_row(&scores, &mut idx, &mut sel);
    assert_eq!(idx, argsort_desc(&scores));
    // Positive NaN has the largest bit pattern: the two NaNs (indices 0
    // and 6, tie broken ascending) outrank +inf, then 0.0 > -0.0 > -inf.
    assert_eq!(idx, [0, 6, 2, 1, 5, 4, 3]);
    assert!(sel[0].is_nan() && sel[1].is_nan());
    assert_eq!(sel[2], f32::INFINITY);
}
