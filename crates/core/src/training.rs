//! Shared BPR training loop (Alg. 1's outer loop), reused by every model
//! in the reproduction so cross-model timing comparisons (Table IV) measure
//! the models, not the harness.

use dgnn_analysis::ShapeTracer;
use dgnn_autograd::{Adam, Optimizer, ParamSet, PlanHarness, Recorder, Tape, Var};
use dgnn_data::{TrainSampler, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a proven [`PlanHarness`] for a model's training step.
///
/// `trace` records one representative step onto the given abstract tracer
/// (the same `record_step`/`trace_step` code the trainer runs on a `Tape`)
/// and returns the loss variable. The step is planned
/// ([`dgnn_analysis::plan`]), the plan is verified by the *independent*
/// safety checker ([`dgnn_analysis::check_plan`]), and only then lowered
/// into an executable harness. Plans depend solely on graph topology, so
/// one probe batch covers every batch of training.
///
/// # Panics
/// Panics when the traced step fails the safety proof — executing an
/// unproven plan could free a value that backward still reads.
pub fn planned_harness<F>(trace: F) -> PlanHarness
where
    F: FnOnce(&mut ShapeTracer) -> Var,
{
    build_harness(true, false, trace).expect("build_harness(true, ..) always plans")
}

/// Builds whatever training-step harness the configuration asks for.
///
/// `use_plan` enables the static memory plan ([`dgnn_analysis::plan`],
/// proven by [`dgnn_analysis::check_plan`]); `use_opt` enables the graph
/// optimizer ([`dgnn_analysis::optimize`] — constant folding, CSE, op
/// fusion — proven by the *independent* [`dgnn_analysis::check_rewrites`]).
/// With both off the model trains on a plain `Tape` and this returns
/// `None`; `trace` is never called. With both on, the memory plan is made
/// rewrite-aware ([`dgnn_analysis::plan_with_rewrites`] /
/// [`dgnn_analysis::check_plan_with_rewrites`]) so the extra reads
/// optimized execution performs — CSE copy sources, fused gather tables —
/// keep their buffers alive.
///
/// The `DGNN_GRAPH_OPT` environment variable overrides `use_opt`: `"1"`
/// forces the optimizer on, `"0"` forces it off. This is the switch the CI
/// harness uses to run the whole test suite optimized without touching any
/// model code.
///
/// On an optimized build the optimizer's statistics are published as
/// `optimizer/{nodes_before,nodes_after,folded,cse_hits,fused}` gauges via
/// `dgnn-obs`.
///
/// # Panics
/// Panics when either proof fails — executing an unproven plan could free
/// or corrupt a value a later read still needs.
pub fn build_harness<F>(use_plan: bool, use_opt: bool, trace: F) -> Option<PlanHarness>
where
    F: FnOnce(&mut ShapeTracer) -> Var,
{
    let use_opt = match std::env::var("DGNN_GRAPH_OPT").ok().as_deref() {
        Some("1") => true,
        Some("0") => false,
        _ => use_opt,
    };
    if !use_plan && !use_opt {
        return None;
    }
    let mut tracer = ShapeTracer::new();
    let loss = trace(&mut tracer);
    let rewrites = use_opt.then(|| {
        let (rewrites, stats) = dgnn_analysis::optimize(&tracer, loss, &[]);
        if let Err(violation) = dgnn_analysis::check_rewrites(&tracer, loss, &[], &rewrites) {
            // PANICS: an unsound rewrite must never reach the executor; this
            // fires only on an optimizer bug, which the independent checker
            // exists to catch before a single fused kernel runs.
            panic!("refusing to execute an unproven rewrite plan: {violation}");
        }
        dgnn_obs::gauge_set("optimizer/nodes_before", stats.nodes_before as f64);
        dgnn_obs::gauge_set("optimizer/nodes_after", stats.nodes_after as f64);
        dgnn_obs::gauge_set("optimizer/folded", stats.folded as f64);
        dgnn_obs::gauge_set("optimizer/cse_hits", stats.cse_hits as f64);
        dgnn_obs::gauge_set("optimizer/fused", stats.fused as f64);
        rewrites
    });
    let plan = use_plan.then(|| {
        let mplan = match &rewrites {
            Some(rw) => dgnn_analysis::plan_with_rewrites(&tracer, loss, &[], rw),
            None => dgnn_analysis::plan(&tracer, loss, &[]),
        };
        let proof = match &rewrites {
            Some(rw) => dgnn_analysis::check_plan_with_rewrites(&tracer, loss, &[], rw, &mplan),
            None => dgnn_analysis::check_plan(&tracer, loss, &[], &mplan),
        };
        if let Err(violation) = proof {
            // PANICS: an unsound plan must never reach the executor; this
            // fires only on a planner bug, which the independent checker
            // exists to catch before any memory is recycled.
            panic!("refusing to execute an unproven memory plan: {violation}");
        }
        mplan.tape_plan()
    });
    Some(match rewrites {
        Some(rw) => PlanHarness::with_rewrites(plan, rw),
        None => PlanHarness::new(plan.expect("use_plan or use_opt holds here")),
    })
}

/// Loop hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainLoop {
    /// Number of epochs.
    pub epochs: usize,
    /// Triples per batch.
    pub batch_size: usize,
    /// Global gradient-norm clip (graph models occasionally spike early).
    pub grad_clip: f32,
}

impl Default for TrainLoop {
    fn default() -> Self {
        Self { epochs: 30, batch_size: 2048, grad_clip: 50.0 }
    }
}

/// Runs BPR training: per batch, `forward` must build the computation graph
/// and return `(positive_scores, negative_scores)` as `B × 1` variables.
///
/// Returns the mean BPR loss per epoch. `on_epoch` fires after each epoch
/// with `(epoch_index, mean_loss)` — the hook the per-epoch convergence
/// experiment (Figure 8) uses.
pub fn run_bpr<F>(
    loop_cfg: TrainLoop,
    params: &mut ParamSet,
    opt: &mut Adam,
    sampler: &TrainSampler,
    seed: u64,
    mut forward: F,
    mut on_epoch: impl FnMut(usize, f32),
) -> Vec<f32>
where
    F: FnMut(&mut Tape, &ParamSet, &[Triple]) -> (Var, Var),
{
    assert!(loop_cfg.batch_size > 0, "run_bpr: batch_size must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB1E55ED);
    let batches_per_epoch =
        sampler.num_positives().div_ceil(loop_cfg.batch_size).max(1);
    let mut losses = Vec::with_capacity(loop_cfg.epochs);
    for epoch in 0..loop_cfg.epochs {
        let _epoch_span = dgnn_obs::span("epoch");
        let mut epoch_loss = 0.0;
        for _ in 0..batches_per_epoch {
            let _batch_span = dgnn_obs::span("batch");
            let triples = sampler.batch(&mut rng, loop_cfg.batch_size);
            let mut tape = Tape::new();
            let loss = {
                let _fwd = dgnn_obs::span("forward");
                let (pos, neg) = forward(&mut tape, params, &triples);
                tape.bpr_loss(pos, neg)
            };
            params.zero_grads();
            {
                let _bwd = dgnn_obs::span("backward");
                epoch_loss += tape.backward_into(loss, params);
            }
            let _opt_span = dgnn_obs::span("optimizer");
            let pre = params.clip_grad_norm(loop_cfg.grad_clip);
            dgnn_obs::hist_record("grad_norm/preclip", f64::from(pre));
            if pre.is_finite() {
                // Clipping caps a finite norm at the threshold; a non-finite
                // norm is left unclipped (and counted) by clip_grad_norm.
                dgnn_obs::hist_record(
                    "grad_norm/postclip",
                    f64::from(pre.min(loop_cfg.grad_clip)),
                );
            }
            opt.step(params);
        }
        let mean = epoch_loss / batches_per_epoch as f32;
        dgnn_obs::hist_record("epoch_mean_loss", f64::from(mean));
        losses.push(mean);
        on_epoch(epoch, mean);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::HeteroGraphBuilder;
    use dgnn_tensor::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::rc::Rc;

    /// Matrix-factorization BPR on a tiny planted dataset: the loop must
    /// drive the loss down and rank positives above negatives.
    #[test]
    fn bpr_loop_learns_matrix_factorization() {
        let mut b = HeteroGraphBuilder::new(4, 12, 1);
        // Users 0,1 like items 0..6; users 2,3 like items 6..12.
        for u in 0..2 {
            for v in 0..6 {
                b.interaction(u, v, 0);
            }
        }
        for u in 2..4 {
            for v in 6..12 {
                b.interaction(u, v, 0);
            }
        }
        let g = b.build();
        let sampler = TrainSampler::new(&g);

        let mut rng = StdRng::seed_from_u64(0);
        let mut params = ParamSet::new();
        let eu = params.add("eu", Init::Uniform(0.1).build(4, 8, &mut rng));
        let ev = params.add("ev", Init::Uniform(0.1).build(12, 8, &mut rng));
        let mut adam = Adam::new(0.05, 1e-5);

        let losses = run_bpr(
            TrainLoop { epochs: 40, batch_size: 64, grad_clip: 10.0 },
            &mut params,
            &mut adam,
            &sampler,
            7,
            |tape, params, triples| {
                let eu = tape.param(params, eu);
                let ev = tape.param(params, ev);
                let users: Rc<Vec<usize>> =
                    Rc::new(triples.iter().map(|t| t.user as usize).collect());
                let pos: Rc<Vec<usize>> =
                    Rc::new(triples.iter().map(|t| t.pos as usize).collect());
                let neg: Rc<Vec<usize>> =
                    Rc::new(triples.iter().map(|t| t.neg as usize).collect());
                let ue = tape.gather(eu, users);
                let pe = tape.gather(ev, pos);
                let ne = tape.gather(ev, neg);
                let ps = tape.row_dots(ue, pe);
                let ns = tape.row_dots(ue, ne);
                (ps, ns)
            },
            |_, _| {},
        );

        assert!(losses[0] > *losses.last().expect("non-empty losses"));
        assert!(*losses.last().expect("non-empty") < 0.35, "final loss {losses:?}");

        // Preference check: user 0 should now score item 1 above item 10.
        let u0 = params.value(eu).row(0).to_vec();
        let dot = |item: usize| -> f32 {
            params.value(ev).row(item).iter().zip(&u0).map(|(&a, &b)| a * b).sum()
        };
        assert!(dot(1) > dot(10), "in-block item should outrank out-of-block");
    }

    #[test]
    fn epoch_callback_fires_each_epoch() {
        let mut b = HeteroGraphBuilder::new(2, 5, 1);
        b.interaction(0, 0, 0).interaction(1, 1, 0);
        let sampler = TrainSampler::new(&b.build());
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let e = params.add("e", Init::Uniform(0.1).build(7, 4, &mut rng));
        let mut adam = Adam::new(0.01, 0.0);
        let mut epochs_seen = Vec::new();
        run_bpr(
            TrainLoop { epochs: 3, batch_size: 8, grad_clip: 10.0 },
            &mut params,
            &mut adam,
            &sampler,
            0,
            |tape, params, triples| {
                let e = tape.param(params, e);
                let users: Rc<Vec<usize>> =
                    Rc::new(triples.iter().map(|t| t.user as usize).collect());
                let pos: Rc<Vec<usize>> =
                    Rc::new(triples.iter().map(|t| 2 + t.pos as usize).collect());
                let neg: Rc<Vec<usize>> =
                    Rc::new(triples.iter().map(|t| 2 + t.neg as usize).collect());
                let ue = tape.gather(e, users);
                let pe = tape.gather(e, pos);
                let ne = tape.gather(e, neg);
                let ps = tape.row_dots(ue, pe);
                let ns = tape.row_dots(ue, ne);
                (ps, ns)
            },
            |epoch, loss| {
                epochs_seen.push(epoch);
                assert!(loss.is_finite());
            },
        );
        assert_eq!(epochs_seen, vec![0, 1, 2]);
    }
}
