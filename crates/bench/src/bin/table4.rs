//! **E8 — Table IV**: running time (seconds) per epoch for the efficiency
//! study — DGCF, HGT, and DGNN, training and testing, on all three
//! datasets. The paper's claim under test: DGNN < DGCF < HGT in training
//! time, with the gap growing with graph size.

use dgnn_baselines::{BaselineConfig, Dgcf, Hgt};
use dgnn_bench::{baseline_config, datasets, dgnn_config, run_cell, write_csv, SEED};
use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::Dataset;
use dgnn_eval::Trainable;

/// Epochs to average over.
const TIMING_EPOCHS: usize = 3;

fn time_model(model: &mut dyn Trainable, ds: &Dataset) -> (f64, f64) {
    let cell = run_cell(model, ds, SEED);
    let train_per_epoch = cell.train_time.as_secs_f64() / TIMING_EPOCHS as f64;
    (train_per_epoch, cell.eval_time.as_secs_f64())
}

fn main() {
    let data = datasets();
    println!("=== Table IV: running time (seconds) per epoch ===\n");
    println!("{:<8} {:>14} {:>14} {:>14}", "Model", "Dataset", "Train s/epoch", "Test s");
    let mut rows = Vec::new();
    for ds in &data {
        eprintln!("dataset {} …", ds.name);
        let bcfg = BaselineConfig { epochs: TIMING_EPOCHS, ..baseline_config() };
        let dcfg = DgnnConfig { epochs: TIMING_EPOCHS, ..dgnn_config() };
        let mut models: Vec<Box<dyn Trainable>> = vec![
            Box::new(Dgcf::new(bcfg.clone())),
            Box::new(Hgt::new(bcfg)),
            Box::new(Dgnn::new(dcfg)),
        ];
        for model in &mut models {
            let (tr, te) = time_model(model.as_mut(), ds);
            println!("{:<8} {:>14} {:>14.3} {:>14.3}", model.name(), ds.name, tr, te);
            rows.push(format!("{},{},{tr:.4},{te:.4}", model.name(), ds.name));
        }
    }
    let path = write_csv("table4", "model,dataset,train_s_per_epoch,test_s", &rows);
    println!("\nraw: {}", path.display());
}
