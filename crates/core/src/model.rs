//! The DGNN model: memory-augmented heterogeneous message passing.

use std::rc::Rc;

use dgnn_autograd::{Adam, Optimizer, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler, Triple};
use dgnn_eval::{Recommender, Trainable};
use dgnn_graph::HeteroGraph;
use dgnn_tensor::{Csr, CsrBuilder, Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::DgnnConfig;
use crate::training::TrainLoop;

/// The memory banks of the relation heterogeneity encoder: one per
/// directed relation family plus one self-loop bank per node type
/// ("non-sharing hyperparameter space", Section IV-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryBankKind {
    /// user ← user (social influence messages).
    SocialToUser,
    /// user ← item (interaction messages, item side).
    ItemToUser,
    /// item ← user (interaction messages, user side).
    UserToItem,
    /// item ← relation node (knowledge messages).
    RelToItem,
    /// relation node ← item.
    ItemToRel,
    /// user self-propagation (Eq. 7's `φ(H[v])` term).
    SelfUser,
    /// item self-propagation.
    SelfItem,
    /// relation-node self-propagation.
    SelfRel,
}

impl MemoryBankKind {
    /// All banks, index-aligned with the internal storage.
    pub const ALL: [MemoryBankKind; 8] = [
        MemoryBankKind::SocialToUser,
        MemoryBankKind::ItemToUser,
        MemoryBankKind::UserToItem,
        MemoryBankKind::RelToItem,
        MemoryBankKind::ItemToRel,
        MemoryBankKind::SelfUser,
        MemoryBankKind::SelfItem,
        MemoryBankKind::SelfRel,
    ];

    fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("bank kind is in ALL")
    }
}

/// One memory bank: `|M|` transformation matrices `W¹_m ∈ R^{d×d}` plus the
/// attention projection `W² ∈ R^{d×|M|}` and bias `b ∈ R^{1×|M|}` of Eq. 3.
struct Bank {
    w1: Vec<ParamId>,
    w2: ParamId,
    bias: ParamId,
}

/// Per-layer, per-node-type LayerNorm affine terms (ω₁, ω₂ of Eq. 7).
struct LnAffine {
    scale: ParamId,
    bias: ParamId,
}

/// Normalized adjacency bundle (all `Rc` so tapes share them per step).
struct Adjacencies {
    /// user ← user, rows jointly normalized by `1/(|N^S_u| + |N^Y_u|)`.
    uu: Rc<Csr>,
    uu_t: Rc<Csr>,
    /// user ← item, same row normalizer.
    uv: Rc<Csr>,
    uv_t: Rc<Csr>,
    /// item ← user, rows normalized by `1/(|N^Y_v| + |N^T_v|)`.
    vu: Rc<Csr>,
    vu_t: Rc<Csr>,
    /// item ← relation node, same row normalizer.
    vr: Rc<Csr>,
    vr_t: Rc<Csr>,
    /// relation ← item, rows normalized by `1/|N_r|`.
    rv: Rc<Csr>,
    rv_t: Rc<Csr>,
    /// The recalibration operator τ: social averaging with a self loop,
    /// `1/(|N^S_u| + 1)` (Eq. 9).
    tau: Rc<Csr>,
    tau_t: Rc<Csr>,
}

struct Handles {
    e_user: ParamId,
    e_item: ParamId,
    e_rel: ParamId,
    banks: Vec<Bank>,
    /// Indexed `layer * 2 + node_type` (0=user, 1=item).
    ln: Vec<LnAffine>,
    /// One per layer that updates relation nodes (the final layer never
    /// does: relation embeddings only feed the *next* layer's item
    /// aggregation, so its update would be dead compute).
    ln_rel: Vec<LnAffine>,
    adj: Adjacencies,
    num_rels: usize,
}

/// The trained DGNN recommender.
///
/// Construct with [`Dgnn::new`], train with [`Trainable::fit`] (or
/// [`Dgnn::fit_epochs`] for per-epoch hooks), then score through the
/// [`Recommender`] trait.
pub struct Dgnn {
    cfg: DgnnConfig,
    params: ParamSet,
    handles: Option<Handles>,
    pretrained: Option<crate::pretrain::PretrainedEmbeddings>,
    /// `H*[u] + τ(H*[u])` rows used in the prediction dot product (Eq. 10).
    user_scoring: Matrix,
    /// `H*[u]` without recalibration (embedding visualization, Fig. 9).
    user_final: Matrix,
    /// `H*[v]`.
    item_final: Matrix,
    /// Per-user memory attention over the social bank at the last layer
    /// (Fig. 10's "user-user memory weights").
    attn_social: Matrix,
    /// Per-user memory attention over the interaction bank (Fig. 10's
    /// "user-item memory weights").
    attn_interaction: Matrix,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Dgnn {
    /// Creates an untrained model.
    pub fn new(cfg: DgnnConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            params: ParamSet::new(),
            handles: None,
            pretrained: None,
            user_scoring: Matrix::zeros(0, 0),
            user_final: Matrix::zeros(0, 0),
            item_final: Matrix::zeros(0, 0),
            attn_social: Matrix::zeros(0, 0),
            attn_interaction: Matrix::zeros(0, 0),
            loss_history: Vec::new(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DgnnConfig {
        &self.cfg
    }

    /// Warm-starts the embedding tables from a
    /// [`crate::pretrain::Pretrainer`] run (the paper's future-work
    /// "pre-trained framework" extension). Must be called before `fit`;
    /// shapes are validated at fit time.
    pub fn with_pretrained(mut self, emb: crate::pretrain::PretrainedEmbeddings) -> Self {
        assert_eq!(
            emb.user.cols(),
            self.cfg.dim,
            "pretrained dimensionality must match DgnnConfig::dim"
        );
        self.pretrained = Some(emb);
        self
    }

    /// Final user embeddings `H*[u]` (available after training).
    pub fn user_embeddings(&self) -> &Matrix {
        &self.user_final
    }

    /// Final item embeddings `H*[v]`.
    pub fn item_embeddings(&self) -> &Matrix {
        &self.item_final
    }

    /// Per-user memory-attention vectors for the social or interaction
    /// bank (the quantity visualized in the paper's Figure 10).
    ///
    /// # Panics
    /// Panics for bank kinds other than `SocialToUser` / `UserToItem`, or
    /// before training.
    pub fn memory_attention(&self, kind: MemoryBankKind) -> &Matrix {
        assert!(!self.user_scoring.is_empty(), "model not trained yet");
        match kind {
            MemoryBankKind::SocialToUser => &self.attn_social,
            MemoryBankKind::UserToItem => &self.attn_interaction,
            // PANICS: item-side banks are never dumped; asking for one is a
            // caller bug, not a recoverable state.
            other => panic!("memory_attention: only user-side banks are dumped, got {other:?}"),
        }
    }

    /// Trains with a per-epoch hook: after every epoch the final embeddings
    /// are refreshed and `on_epoch(self, epoch, mean_loss)` fires with the
    /// parameters *as of that epoch* — the driver for the paper's
    /// accuracy-vs-epoch study (Figure 8).
    pub fn fit_epochs(
        &mut self,
        data: &Dataset,
        seed: u64,
        mut on_epoch: impl FnMut(&Self, usize, f32),
    ) {
        let g = &data.graph;
        self.init_params(g, seed);
        if self.cfg.threads > 0 {
            dgnn_tensor::parallel::set_threads(self.cfg.threads);
        }
        dgnn_obs::gauge_set(
            "parallel/threads",
            dgnn_tensor::parallel::current_threads() as f64,
        );
        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let loop_cfg = TrainLoop {
            epochs: self.cfg.epochs,
            batch_size: self.cfg.batch_size,
            ..TrainLoop::default()
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB1E5_5ED);
        let batches_per_epoch =
            sampler.num_positives().div_ceil(loop_cfg.batch_size).max(1);
        self.loss_history.clear();

        // Statically planned / graph-optimized execution: trace one probe
        // step (on its own rng, so training draws are untouched and results
        // stay bit-identical), prove the plan and rewrites safe, and run
        // every step through the proven harness.
        let mut harness =
            crate::training::build_harness(self.cfg.use_memory_plan, self.cfg.use_graph_opt, |tr| {
                let mut probe_rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
                let probe = sampler.batch(&mut probe_rng, loop_cfg.batch_size);
                self.record_step(tr, &probe)
            });

        for epoch in 0..loop_cfg.epochs {
            let _epoch_span = dgnn_obs::span("epoch");
            let mut epoch_loss = 0.0;
            for _ in 0..batches_per_epoch {
                let _batch_span = dgnn_obs::span("batch");
                let triples = sampler.batch(&mut rng, loop_cfg.batch_size);
                let mut tape = match harness.as_mut() {
                    Some(h) => h.begin_step(),
                    None => Tape::new(),
                };
                let loss = {
                    let _fwd = dgnn_obs::span("forward");
                    self.record_step(&mut tape, &triples)
                };
                self.params.zero_grads();
                {
                    let _bwd = dgnn_obs::span("backward");
                    epoch_loss += tape.backward_into(loss, &mut self.params);
                }
                {
                    let _opt_span = dgnn_obs::span("optimizer");
                    let pre = self.params.clip_grad_norm(loop_cfg.grad_clip);
                    dgnn_obs::hist_record("grad_norm/preclip", f64::from(pre));
                    if pre.is_finite() {
                        dgnn_obs::hist_record(
                            "grad_norm/postclip",
                            f64::from(pre.min(loop_cfg.grad_clip)),
                        );
                    }
                    adam.step(&mut self.params);
                }
                if let Some(h) = harness.as_mut() {
                    h.end_step(tape);
                }
            }
            let mean = epoch_loss / batches_per_epoch as f32;
            dgnn_obs::hist_record("epoch_mean_loss", f64::from(mean));
            self.loss_history.push(mean);
            self.finalize();
            on_epoch(self, epoch, mean);
        }
        if loop_cfg.epochs == 0 {
            self.finalize();
        }
    }

    /// Registers parameters and builds the adjacency bundle without
    /// running any training step.
    ///
    /// This is the entry point for static analysis: after `prepare`, the
    /// model can [`Dgnn::record_step`] onto *any* [`Recorder`] — a
    /// [`Tape`] for real training, or an abstract tracer that verifies the
    /// compute graph before the first gradient is ever computed.
    pub fn prepare(&mut self, g: &HeteroGraph, seed: u64) {
        self.init_params(g, seed);
    }

    /// The model's parameter set (registered by [`Dgnn::prepare`] /
    /// [`Trainable::fit`]).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Records one full training step — forward pass plus BPR loss over
    /// `triples` — onto `rec` and returns the loss variable.
    ///
    /// Exactly this graph is what [`Trainable::fit`] differentiates each
    /// step, so auditing it covers the trained model, not a replica.
    ///
    /// # Panics
    /// Panics if called before [`Dgnn::prepare`] (or `fit`).
    pub fn record_step<R: Recorder>(&self, rec: &mut R, triples: &[Triple]) -> Var {
        let _span = dgnn_obs::span("dgnn/record_step");
        // PANICS: construction order is enforced by the public API — both
        // callers run prepare/init_params first.
        let handles = self.handles.as_ref().expect("record_step before prepare");
        let fwd = forward(rec, &self.params, handles, &self.cfg);
        let users: Rc<Vec<usize>> = Rc::new(triples.iter().map(|t| t.user as usize).collect());
        let pos: Rc<Vec<usize>> = Rc::new(triples.iter().map(|t| t.pos as usize).collect());
        let neg: Rc<Vec<usize>> = Rc::new(triples.iter().map(|t| t.neg as usize).collect());
        let ue = rec.gather(fwd.user_scoring, users);
        let pe = rec.gather(fwd.item_final, pos);
        let ne = rec.gather(fwd.item_final, neg);
        let ps = rec.row_dots(ue, pe);
        let ns = rec.row_dots(ue, ne);
        rec.bpr_loss(ps, ns)
    }

    fn init_params(&mut self, g: &HeteroGraph, seed: u64) {
        let cfg = &self.cfg;
        let d = cfg.dim;
        let m = cfg.effective_memory_units();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();

        let (init_user, init_item, init_rel) = match &self.pretrained {
            Some(pre) => {
                assert_eq!(pre.user.shape(), (g.num_users(), d), "pretrained user table shape");
                assert_eq!(pre.item.shape(), (g.num_items(), d), "pretrained item table shape");
                // Burn the same number of RNG draws so downstream init
                // (banks, LN) matches the non-pretrained seeding exactly.
                let _ = Init::Uniform(0.1).build(g.num_users(), d, &mut rng);
                let _ = Init::Uniform(0.1).build(g.num_items(), d, &mut rng);
                let _ = Init::Uniform(0.1).build(g.num_relations().max(1), d, &mut rng);
                (pre.user.clone(), pre.item.clone(), pre.rel.clone())
            }
            None => (
                Init::Uniform(0.1).build(g.num_users(), d, &mut rng),
                Init::Uniform(0.1).build(g.num_items(), d, &mut rng),
                Init::Uniform(0.1).build(g.num_relations().max(1), d, &mut rng),
            ),
        };
        let e_user = params.add("e_user", init_user);
        let e_item = params.add("e_item", init_item);
        let e_rel = params.add("e_rel", init_rel);

        let mut banks = Vec::with_capacity(MemoryBankKind::ALL.len());
        for kind in MemoryBankKind::ALL {
            let w1 = (0..m)
                .map(|i| {
                    params.add(
                        format!("{kind:?}/w1[{i}]"),
                        Init::XavierUniform.build(d, d, &mut rng),
                    )
                })
                .collect();
            let w2 = params
                .add(format!("{kind:?}/w2"), Init::XavierUniform.build(d, m, &mut rng));
            let bias = params.add(format!("{kind:?}/b"), Matrix::zeros(1, m));
            banks.push(Bank { w1, w2, bias });
        }

        let has_knowledge = cfg.use_knowledge && g.num_relations() > 0;
        let mut ln = Vec::new();
        let mut ln_rel = Vec::new();
        for layer in 0..cfg.layers {
            for ty in ["user", "item"] {
                let scale = params.add(format!("ln/{ty}/{layer}/scale"), Matrix::full(1, d, 1.0));
                let bias = params.add(format!("ln/{ty}/{layer}/bias"), Matrix::zeros(1, d));
                ln.push(LnAffine { scale, bias });
            }
            // The final layer never updates relation nodes (their only
            // consumer is the next layer's item aggregation), so its
            // affine would be a parameter with no gradient path.
            if has_knowledge && layer + 1 < cfg.layers {
                let scale = params.add(format!("ln/rel/{layer}/scale"), Matrix::full(1, d, 1.0));
                let bias = params.add(format!("ln/rel/{layer}/bias"), Matrix::zeros(1, d));
                ln_rel.push(LnAffine { scale, bias });
            }
        }

        let adj = build_adjacencies(g, cfg);
        self.handles =
            Some(Handles { e_user, e_item, e_rel, banks, ln, ln_rel, adj, num_rels: g.num_relations() });
        self.params = params;
    }

    /// Serializes the trained model — every parameter, the final
    /// propagated embeddings, the recalibration matrix τ (when enabled),
    /// and the per-user seen-item lists — into a [`Checkpoint`].
    ///
    /// A serving [`dgnn_serve::Engine`] built from this checkpoint
    /// re-applies the Eq. 9–10 recalibration with the same spmm/add
    /// kernels `finalize` used and scores with the same sequential dot
    /// product, so served scores are bit-identical to
    /// [`Recommender::score`] on this model.
    ///
    /// [`Checkpoint`]: dgnn_serve::Checkpoint
    ///
    /// # Panics
    /// Panics if the model has not been trained.
    pub fn export_checkpoint(&self, dataset: &str) -> dgnn_serve::Checkpoint {
        assert!(!self.user_scoring.is_empty(), "export_checkpoint before fit");
        // PANICS: user_scoring is only non-empty after init_params + finalize,
        // so trained state implies handles exist.
        let handles = self.handles.as_ref().expect("trained model has handles");
        let mut ckpt = dgnn_serve::Checkpoint::new();
        ckpt.set_meta("model", self.name());
        ckpt.set_meta("dataset", dataset);
        for (k, v) in self.cfg.to_meta() {
            ckpt.set_meta(&k, &v);
        }
        for id in self.params.ids() {
            ckpt.push_matrix(&format!("param/{}", self.params.name(id)), self.params.value(id));
        }
        ckpt.push_matrix("final/user", &self.user_final);
        ckpt.push_matrix("final/user_scoring", &self.user_scoring);
        ckpt.push_matrix("final/item", &self.item_final);
        ckpt.push_matrix("final/attn_social", &self.attn_social);
        ckpt.push_matrix("final/attn_interaction", &self.attn_interaction);
        if self.cfg.use_recalibration {
            let tau = handles.adj.tau.as_ref();
            ckpt.push_u32("tau/indptr", tau.row_ptr().iter().map(|&p| p as u32).collect());
            ckpt.push_u32("tau/cols", tau.col_idx().iter().map(|&c| c as u32).collect());
            ckpt.push_f32("tau/values", 1, tau.nnz(), tau.values().to_vec());
        }
        // Seen lists come from the user←item adjacency's structure: the
        // columns of row u are exactly u's training interactions.
        let uv = handles.adj.uv.as_ref();
        let mut indptr = Vec::with_capacity(uv.rows() + 1);
        let mut items = Vec::with_capacity(uv.nnz());
        indptr.push(0u32);
        for u in 0..uv.rows() {
            items.extend(uv.row_cols(u).iter().map(|&v| v as u32));
            indptr.push(items.len() as u32);
        }
        ckpt.push_u32("seen/indptr", indptr);
        ckpt.push_u32("seen/items", items);
        ckpt
    }

    /// [`Dgnn::export_checkpoint`] + write to `path`.
    ///
    /// # Panics
    /// Panics if the model has not been trained.
    pub fn save_checkpoint(
        &self,
        dataset: &str,
        path: &std::path::Path,
    ) -> Result<(), dgnn_serve::CheckpointError> {
        self.export_checkpoint(dataset).save(path)
    }

    /// [`Dgnn::export_checkpoint`] split into a *segmented* checkpoint
    /// directory: one `DGCK` segment per `shard_rows`-sized contiguous
    /// id range of the user/item tables plus a checksummed manifest
    /// (see `dgnn_serve::segment`). The user segments store the
    /// pre-recalibrated scoring table (`user + τ·user`) because the spmm
    /// needs cross-shard neighbor rows that a lazily-loaded serving
    /// process must not depend on; a sharded engine over this directory
    /// answers bit-identically to the dense one.
    ///
    /// # Panics
    /// Panics if the model has not been trained.
    pub fn save_checkpoint_segmented(
        &self,
        dataset: &str,
        dir: &std::path::Path,
        user_shard_rows: usize,
        item_shard_rows: usize,
    ) -> Result<dgnn_serve::SegmentedSummary, dgnn_serve::CheckpointError> {
        let ckpt = self.export_checkpoint(dataset);
        dgnn_serve::save_segmented(&ckpt, dir, user_shard_rows, item_shard_rows)
    }

    /// Restores a model from a checkpoint written by
    /// [`Dgnn::save_checkpoint`]: the configuration, every parameter (in
    /// registration order, under their original names), and the cached
    /// final embeddings — [`Recommender::score`] answers immediately and
    /// bit-identically to the saved model.
    ///
    /// The graph handles are *not* restored (they derive from a dataset,
    /// not from parameters); refitting re-initializes from the dataset as
    /// usual.
    pub fn load_checkpoint(path: &std::path::Path) -> Result<Self, dgnn_serve::CheckpointError> {
        use dgnn_serve::CheckpointError;
        let ckpt = dgnn_serve::Checkpoint::load(path)?;
        match ckpt.meta("model") {
            Some("DGNN") => {}
            other => {
                return Err(CheckpointError::MetaMismatch(format!(
                    "expected model=DGNN, found {other:?}"
                )))
            }
        }
        let cfg = DgnnConfig::from_meta(&|k| ckpt.meta(k).map(str::to_string))
            .map_err(CheckpointError::MetaMismatch)?;
        let mut model = Dgnn::new(cfg);
        for t in ckpt.tensors() {
            if let Some(name) = t.name.strip_prefix("param/") {
                model.params.add(name, ckpt.matrix(&t.name)?);
            }
        }
        model.user_final = ckpt.matrix("final/user")?;
        model.user_scoring = ckpt.matrix("final/user_scoring")?;
        model.item_final = ckpt.matrix("final/item")?;
        model.attn_social = ckpt.matrix("final/attn_social")?;
        model.attn_interaction = ckpt.matrix("final/attn_interaction")?;
        // The scorer dots user_scoring rows against item_final rows, so the
        // two caches must agree on width (the *concatenated* final dim —
        // wider than cfg/dim, which is the per-layer width).
        if model.user_scoring.cols() != model.item_final.cols()
            || model.user_scoring.is_empty()
        {
            return Err(CheckpointError::BadShape(format!(
                "scoring dims disagree: user {} vs item {}",
                model.user_scoring.cols(),
                model.item_final.cols()
            )));
        }
        Ok(model)
    }

    /// Recomputes and caches the final embeddings and attention dumps from
    /// the current parameters.
    fn finalize(&mut self) {
        let handles = self.handles.as_ref().expect("finalize after init");
        let mut tape = Tape::new();
        let fwd = forward(&mut tape, &self.params, handles, &self.cfg);
        self.user_scoring = tape.value(fwd.user_scoring).clone();
        self.user_final = tape.value(fwd.user_final).clone();
        self.item_final = tape.value(fwd.item_final).clone();
        self.attn_social = tape.value(fwd.attn_social).clone();
        self.attn_interaction = tape.value(fwd.attn_interaction).clone();
    }
}

impl Recommender for Dgnn {
    fn name(&self) -> &str {
        "DGNN"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        assert!(!self.user_scoring.is_empty(), "Dgnn::score called before fit");
        // Routed through the GEMM entry points (not a hand-rolled dot
        // loop) so the fold order matches the serving engine's on every
        // `DGNN_GEMM` backend: a checkpointed model must serve these
        // exact bits.
        let u = self.user_scoring.gather_rows(&[user]);
        u.matmul_nt(&self.item_final.gather_rows(items)).as_slice().to_vec()
    }
}

impl Trainable for Dgnn {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        self.fit_epochs(data, seed, |_, _, _| {});
    }
}

/// Forward-pass outputs (tape variables).
struct Forward {
    user_scoring: Var,
    user_final: Var,
    item_final: Var,
    attn_social: Var,
    attn_interaction: Var,
}

/// Memory-augmented encoding of a node family's features (Eq. 3): returns
/// `(Σ_m η_m ⊙ (H·W¹_m), η)`. With `use_memory` off (`-M` ablation) the
/// encoding collapses to the single transform `H·W¹_0` and η is uniform.
fn encode<R: Recorder>(
    tape: &mut R,
    params: &ParamSet,
    bank: &Bank,
    h: Var,
    cfg: &DgnnConfig,
) -> (Var, Var) {
    let m = cfg.effective_memory_units();
    let w2 = tape.param(params, bank.w2);
    let b = tape.param(params, bank.bias);
    let logits = tape.matmul(h, w2);
    let logits = tape.add_row(logits, b);
    let eta = tape.leaky_relu(logits, cfg.leaky_slope);
    if !cfg.use_memory {
        let w1 = tape.param(params, bank.w1[0]);
        let out = tape.matmul(h, w1);
        return (out, eta);
    }
    let mut acc: Option<Var> = None;
    for unit in 0..m {
        let w1 = tape.param(params, bank.w1[unit]);
        let transformed = tape.matmul(h, w1);
        let eta_m = tape.slice_cols(eta, unit, unit + 1);
        let weighted = tape.mul_col(transformed, eta_m);
        acc = Some(match acc {
            Some(a) => tape.add(a, weighted),
            None => weighted,
        });
    }
    (acc.expect("memory_units > 0"), eta)
}

/// Eq. 7: LayerNorm (with learned affine ω₁/ω₂) + activation + encoded
/// self-propagation.
fn layer_update<R: Recorder>(
    tape: &mut R,
    params: &ParamSet,
    cfg: &DgnnConfig,
    agg: Var,
    h_prev: Var,
    self_bank: &Bank,
    ln: &LnAffine,
) -> Var {
    let normed = if cfg.use_layer_norm {
        let n = tape.layer_norm_rows(agg, 1e-5);
        let scale = tape.param(params, ln.scale);
        let bias = tape.param(params, ln.bias);
        let n = tape.mul_row(n, scale);
        tape.add_row(n, bias)
    } else {
        agg
    };
    let activated = tape.leaky_relu(normed, cfg.leaky_slope);
    let (self_msg, _) = encode(tape, params, self_bank, h_prev, cfg);
    tape.add(activated, self_msg)
}

/// Full DGNN forward pass (Alg. 1 lines 4–19).
fn forward<R: Recorder>(tape: &mut R, params: &ParamSet, h: &Handles, cfg: &DgnnConfig) -> Forward {
    let bank = |k: MemoryBankKind| &h.banks[k.index()];
    let has_knowledge = cfg.use_knowledge && h.num_rels > 0;

    let mut hu = tape.param(params, h.e_user);
    let mut hv = tape.param(params, h.e_item);
    let mut hr = tape.param(params, h.e_rel);

    let mut layers_u = vec![hu];
    let mut layers_v = vec![hv];
    let mut last_attn_social = None;
    let mut last_attn_interaction = None;

    for layer in 0..cfg.layers {
        // -- per-source transformed messages (the factored Eq. 3) --------
        let (msg_social, attn_social) =
            encode(tape, params, bank(MemoryBankKind::SocialToUser), hu, cfg);
        let (msg_item_to_user, _) =
            encode(tape, params, bank(MemoryBankKind::ItemToUser), hv, cfg);
        let (msg_user_to_item, attn_interaction) =
            encode(tape, params, bank(MemoryBankKind::UserToItem), hu, cfg);
        last_attn_social = Some(attn_social);
        last_attn_interaction = Some(attn_interaction);

        // -- user aggregation (Eq. 4) -------------------------------------
        let from_items = tape.spmm_with(&h.adj.uv, &h.adj.uv_t, msg_item_to_user);
        let agg_u = if cfg.use_social {
            let from_social = tape.spmm_with(&h.adj.uu, &h.adj.uu_t, msg_social);
            tape.add(from_social, from_items)
        } else {
            from_items
        };

        // -- item aggregation (Eq. 5) --------------------------------------
        let from_users = tape.spmm_with(&h.adj.vu, &h.adj.vu_t, msg_user_to_item);
        let agg_v = if has_knowledge {
            let (msg_rel_to_item, _) =
                encode(tape, params, bank(MemoryBankKind::RelToItem), hr, cfg);
            let from_rels = tape.spmm_with(&h.adj.vr, &h.adj.vr_t, msg_rel_to_item);
            tape.add(from_users, from_rels)
        } else {
            from_users
        };

        // -- relation-node aggregation (Eq. 6) ------------------------------
        // Updated relation embeddings are only read by the *next* layer's
        // item aggregation; at the final layer the update would be dead
        // compute (and its LN affine a gradient-free parameter), so skip it.
        let agg_r = if has_knowledge && layer + 1 < cfg.layers {
            let (msg_item_to_rel, _) =
                encode(tape, params, bank(MemoryBankKind::ItemToRel), hv, cfg);
            Some(tape.spmm_with(&h.adj.rv, &h.adj.rv_t, msg_item_to_rel))
        } else {
            None
        };

        // -- Eq. 7 per node type --------------------------------------------
        let ln_base = layer * 2;
        hu = layer_update(
            tape,
            params,
            cfg,
            agg_u,
            hu,
            bank(MemoryBankKind::SelfUser),
            &h.ln[ln_base],
        );
        hv = layer_update(
            tape,
            params,
            cfg,
            agg_v,
            hv,
            bank(MemoryBankKind::SelfItem),
            &h.ln[ln_base + 1],
        );
        if let Some(agg_r) = agg_r {
            hr = layer_update(
                tape,
                params,
                cfg,
                agg_r,
                hr,
                bank(MemoryBankKind::SelfRel),
                &h.ln_rel[layer],
            );
        }

        layers_u.push(hu);
        layers_v.push(hv);
    }

    // -- Eq. 8: cross-layer aggregation ------------------------------------
    let cat_u = tape.concat_cols(&layers_u);
    let cat_v = tape.concat_cols(&layers_v);
    let user_final = tape.layer_norm_rows(cat_u, 1e-5);
    let item_final = tape.layer_norm_rows(cat_v, 1e-5);

    // -- Eq. 9–10: social recalibration τ -----------------------------------
    let user_scoring = if cfg.use_recalibration {
        let tau = tape.spmm_with(&h.adj.tau, &h.adj.tau_t, user_final);
        tape.add(user_final, tau)
    } else {
        user_final
    };

    // Attention dumps come from the last layer's encoders; with L = 0 no
    // encoder ran, so compute them from the input embeddings directly.
    let (attn_social, attn_interaction) = match (last_attn_social, last_attn_interaction) {
        (Some(s), Some(i)) => (s, i),
        _ => {
            let (_, s) = encode(tape, params, bank(MemoryBankKind::SocialToUser), hu, cfg);
            let (_, i) = encode(tape, params, bank(MemoryBankKind::UserToItem), hu, cfg);
            (s, i)
        }
    };

    Forward { user_scoring, user_final, item_final, attn_social, attn_interaction }
}

/// Builds the jointly-normalized adjacency bundle of Eq. 4–6 and the τ
/// operator of Eq. 9.
fn build_adjacencies(g: &HeteroGraph, cfg: &DgnnConfig) -> Adjacencies {
    let nu = g.num_users();
    let nv = g.num_items();
    let nr = g.num_relations().max(1);

    // User rows: joint normalizer over social + interaction neighborhoods.
    let mut uu = CsrBuilder::new(nu, nu);
    let mut uv = CsrBuilder::new(nu, nv);
    for u in 0..nu {
        let deg_s = if cfg.use_social { g.friends_of(u).len() } else { 0 };
        let deg_y = g.items_of(u).len();
        let norm = 1.0 / (deg_s + deg_y).max(1) as f32;
        if cfg.use_social {
            for &f in g.friends_of(u) {
                uu.push(u, f, norm);
            }
        }
        for &v in g.items_of(u) {
            uv.push(u, v, norm);
        }
    }

    // Item rows: joint normalizer over interaction + knowledge.
    let has_knowledge = cfg.use_knowledge && g.num_relations() > 0;
    let mut vu = CsrBuilder::new(nv, nu);
    let mut vr = CsrBuilder::new(nv, nr);
    for v in 0..nv {
        let deg_y = g.users_of(v).len();
        let deg_t = if has_knowledge { g.ir().row_cols(v).len() } else { 0 };
        let norm = 1.0 / (deg_y + deg_t).max(1) as f32;
        for &u in g.users_of(v) {
            vu.push(v, u, norm);
        }
        if has_knowledge {
            for &r in g.ir().row_cols(v) {
                vr.push(v, r, norm);
            }
        }
    }

    // Relation rows: plain mean.
    let mut rv = CsrBuilder::new(nr, nv);
    if has_knowledge {
        for r in 0..g.num_relations() {
            let items = g.ri().row_cols(r);
            let norm = 1.0 / items.len().max(1) as f32;
            for &v in items {
                rv.push(r, v, norm);
            }
        }
    }

    // τ: social mean including self (Eq. 9). Without social edges it
    // degrades to the identity, matching the formula with |N^S| = 0.
    let mut tau = CsrBuilder::new(nu, nu);
    for u in 0..nu {
        let friends: &[usize] = if cfg.use_social { g.friends_of(u) } else { &[] };
        let norm = 1.0 / (friends.len() + 1) as f32;
        tau.push(u, u, norm);
        for &f in friends {
            tau.push(u, f, norm);
        }
    }

    let rc = |b: CsrBuilder| {
        let m = b.build();
        let t = Rc::new(m.transpose());
        (Rc::new(m), t)
    };
    let (uu, uu_t) = rc(uu);
    let (uv, uv_t) = rc(uv);
    let (vu, vu_t) = rc(vu);
    let (vr, vr_t) = rc(vr);
    let (rv, rv_t) = rc(rv);
    let (tau, tau_t) = rc(tau);
    Adjacencies { uu, uu_t, uv, uv_t, vu, vu_t, vr, vr_t, rv, rv_t, tau, tau_t }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_data::tiny;
    use dgnn_eval::evaluate_at;

    fn quick_cfg() -> DgnnConfig {
        DgnnConfig { dim: 8, layers: 2, memory_units: 4, epochs: 5, batch_size: 256, ..DgnnConfig::default() }
    }

    #[test]
    fn trains_and_beats_random_ranking() {
        let data = tiny(42);
        let mut model = Dgnn::new(quick_cfg());
        model.fit(&data, 7);
        let m = evaluate_at(&model, &data.test, 10);
        // Random ranking over 101 candidates gives HR@10 ≈ 0.099.
        assert!(m.hr > 0.15, "HR@10 {} not better than random", m.hr);
        assert!(model.loss_history.first() > model.loss_history.last());
    }

    #[test]
    fn embeddings_have_cross_layer_width() {
        let data = tiny(42);
        let cfg = quick_cfg();
        let width = (cfg.layers + 1) * cfg.dim;
        let mut model = Dgnn::new(cfg);
        model.fit(&data, 7);
        assert_eq!(model.user_embeddings().cols(), width);
        assert_eq!(model.item_embeddings().cols(), width);
        assert_eq!(model.user_embeddings().rows(), data.graph.num_users());
    }

    #[test]
    fn attention_dumps_have_memory_width() {
        let data = tiny(42);
        let cfg = quick_cfg();
        let m_units = cfg.memory_units;
        let mut model = Dgnn::new(cfg);
        model.fit(&data, 7);
        let a = model.memory_attention(MemoryBankKind::SocialToUser);
        assert_eq!(a.shape(), (data.graph.num_users(), m_units));
        let b = model.memory_attention(MemoryBankKind::UserToItem);
        assert_eq!(b.shape(), (data.graph.num_users(), m_units));
    }

    #[test]
    fn zero_layers_still_works() {
        let data = tiny(42);
        let mut model = Dgnn::new(DgnnConfig { layers: 0, ..quick_cfg() });
        model.fit(&data, 7);
        let m = evaluate_at(&model, &data.test, 10);
        assert!(m.hr > 0.0);
    }

    #[test]
    fn all_ablations_train() {
        let data = tiny(42);
        let base = DgnnConfig { epochs: 2, ..quick_cfg() };
        let variants = [
            base.clone().without_memory(),
            base.clone().without_recalibration(),
            base.clone().without_layer_norm(),
            base.clone().without_social(),
            base.clone().without_knowledge(),
            base.clone().without_social_and_knowledge(),
        ];
        for cfg in variants {
            let mut model = Dgnn::new(cfg.clone());
            model.fit(&data, 7);
            let m = evaluate_at(&model, &data.test, 10);
            assert!(m.hr.is_finite(), "{cfg:?} produced NaN metrics");
        }
    }

    #[test]
    fn fit_epochs_hook_sees_training_progress() {
        let data = tiny(42);
        let mut model = Dgnn::new(DgnnConfig { epochs: 3, ..quick_cfg() });
        let mut seen = Vec::new();
        model.fit_epochs(&data, 7, |m, epoch, loss| {
            // Model is scoreable inside the hook.
            let metrics = evaluate_at(m, &data.test, 10);
            seen.push((epoch, loss, metrics.hr));
        });
        assert_eq!(seen.len(), 3);
        assert!(seen.iter().all(|(_, l, _)| l.is_finite()));
    }

    #[test]
    fn training_is_seed_deterministic() {
        let data = tiny(42);
        let mut a = Dgnn::new(DgnnConfig { epochs: 2, ..quick_cfg() });
        let mut b = Dgnn::new(DgnnConfig { epochs: 2, ..quick_cfg() });
        a.fit(&data, 3);
        b.fit(&data, 3);
        assert_eq!(a.loss_history, b.loss_history);
        assert_eq!(a.user_embeddings().as_slice(), b.user_embeddings().as_slice());
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn scoring_untrained_model_panics() {
        let model = Dgnn::new(quick_cfg());
        model.score(0, &[1, 2]);
    }
}
