//! HAN (Wang et al., WWW 2019): hierarchical attention over meta-paths.
//!
//! The distinguishing mechanism: homogeneous graphs are derived from
//! hand-designed meta-paths (the domain-knowledge requirement the paper
//! criticizes), each gets GAT-style *node-level* attention, and a
//! *semantic-level* attention combines the per-path embeddings.
//!
//! Meta-paths used (the natural ones for this schema):
//! users — `U–U` (social) and `U–V–U` (co-interaction);
//! items — `V–U–V` (co-audience) and `V–R–V` (shared category).

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_graph::compose;
use dgnn_tensor::{Csr, Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Per-row cap when composing meta-path graphs (keeps `U–V–U` sparse).
const META_PATH_CAP: usize = 30;

struct MetaPath {
    seg: Rc<Vec<usize>>,
    src: Rc<Vec<usize>>,
    dst: Rc<Vec<usize>>,
    /// Node-level GAT parameters.
    w: ParamId,
    a_src: ParamId,
    a_dst: ParamId,
    /// Semantic-attention projection for this path.
    q: ParamId,
}

struct State {
    e_user: ParamId,
    e_item: ParamId,
    user_paths: Vec<MetaPath>,
    item_paths: Vec<MetaPath>,
}

fn edges_of(csr: &Csr) -> (Rc<Vec<usize>>, Rc<Vec<usize>>, Rc<Vec<usize>>) {
    let mut dst = Vec::with_capacity(csr.nnz());
    for r in 0..csr.rows() {
        dst.extend(std::iter::repeat(r).take(csr.degree(r)));
    }
    (Rc::new(csr.row_ptr().to_vec()), Rc::new(csr.col_idx().to_vec()), Rc::new(dst))
}

/// Node-level GAT aggregation over one meta-path graph, then the semantic
/// score for this path (`mean(tanh(Z)·q)`, a `1 × 1` variable).
fn node_level(
    tape: &mut Tape,
    params: &ParamSet,
    path: &MetaPath,
    h: Var,
    n: usize,
    d: usize,
) -> (Var, Var) {
    let w = tape.param(params, path.w);
    let hw = tape.matmul(h, w);
    let z = if path.src.is_empty() {
        tape.constant(Matrix::zeros(n, d))
    } else {
        let hs = tape.gather(hw, Rc::clone(&path.src));
        let ht = tape.gather(hw, Rc::clone(&path.dst));
        let a_s = tape.param(params, path.a_src);
        let a_t = tape.param(params, path.a_dst);
        let ls = tape.matmul(hs, a_s);
        let lt = tape.matmul(ht, a_t);
        let logits = tape.add(ls, lt);
        let logits = tape.leaky_relu(logits, 0.2);
        let alpha = tape.segment_softmax(logits, Rc::clone(&path.seg));
        tape.segment_weighted_sum(alpha, hs, Rc::clone(&path.seg))
    };
    let z = tape.add(z, hw); // self-connection
    let q = tape.param(params, path.q);
    let t = tape.tanh(z);
    let scores = tape.matmul(t, q);
    let sem = tape.mean_all(scores);
    (z, sem)
}

/// Semantic attention: softmax over per-path scalar scores, weighted sum of
/// the per-path embeddings.
fn semantic_combine(tape: &mut Tape, zs: &[Var], sems: &[Var], n: usize) -> Var {
    let cat = tape.concat_cols(sems); // 1 × P
    let beta = tape.softmax_rows(cat);
    let ones = tape.constant(Matrix::full(n, 1, 1.0));
    let mut out: Option<Var> = None;
    for (p, &z) in zs.iter().enumerate() {
        let b = tape.slice_cols(beta, p, p + 1); // 1 × 1
        let b_col = tape.matmul(ones, b); // n × 1
        let weighted = tape.mul_col(z, b_col);
        out = Some(match out {
            Some(acc) => tape.add(acc, weighted),
            None => weighted,
        });
    }
    out.expect("at least one meta-path")
}

fn forward(st: &State, d: usize, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let eu = tape.param(params, st.e_user);
    let ev = tape.param(params, st.e_item);
    let nu = tape.value(eu).rows();
    let nv = tape.value(ev).rows();

    let mut uz = Vec::new();
    let mut usem = Vec::new();
    for path in &st.user_paths {
        let (z, s) = node_level(tape, params, path, eu, nu, d);
        uz.push(z);
        usem.push(s);
    }
    let users = semantic_combine(tape, &uz, &usem, nu);

    let mut vz = Vec::new();
    let mut vsem = Vec::new();
    for path in &st.item_paths {
        let (z, s) = node_level(tape, params, path, ev, nv, d);
        vz.push(z);
        vsem.push(s);
    }
    let items = semantic_combine(tape, &vz, &vsem, nv);
    (users, items)
}

/// The HAN recommender (applied to the collaborative heterogeneous graph,
/// as the paper describes in §V-A2).
pub struct Han {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Han {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }

    /// Final `(user, item)` embeddings (after `fit`; Figure 9).
    pub fn embeddings(&self) -> (&Matrix, &Matrix) {
        (&self.scorer.user, &self.scorer.item)
    }
}

impl Recommender for Han {
    fn name(&self) -> &str {
        "HAN"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("HAN", user, items)
    }
}

impl Trainable for Han {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let d = self.cfg.dim;
        let e_user = params.add("e_user", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
        let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng));

        let mut make_path = |name: &str, csr: &Csr| -> MetaPath {
            let (seg, src, dst) = edges_of(csr);
            MetaPath {
                seg,
                src,
                dst,
                w: params.add(format!("{name}/w"), Init::XavierUniform.build(d, d, &mut rng)),
                a_src: params.add(format!("{name}/a_src"), Init::XavierUniform.build(d, 1, &mut rng)),
                a_dst: params.add(format!("{name}/a_dst"), Init::XavierUniform.build(d, 1, &mut rng)),
                q: params.add(format!("{name}/q"), Init::XavierUniform.build(d, 1, &mut rng)),
            }
        };
        let uvu = compose(g.ui(), g.iu(), META_PATH_CAP);
        let vuv = compose(g.iu(), g.ui(), META_PATH_CAP);
        let vrv = compose(g.ir(), g.ri(), META_PATH_CAP);
        let user_paths = vec![make_path("UU", g.ss()), make_path("UVU", &uvu)];
        let item_paths = vec![make_path("VUV", &vuv), make_path("VRV", &vrv)];
        let st = State { e_user, e_item, user_paths, item_paths };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, _| {
                let (users, items) = forward(&st, d, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, d, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn han_beats_random() {
        assert_beats_random(&mut Han::new(quick()));
    }
}
