//! Sparsity-group evaluation (the paper's Figure 6).
//!
//! Users are ranked by an activity measure (training interactions, or
//! social degree) and partitioned into four equal-count quartiles
//! (`0–25%`, `25–50%`, `50–75%`, `75–100%`); each quartile is evaluated
//! separately.

use dgnn_data::TestInstance;

use crate::metrics::{evaluate_at, RankingMetrics};
use crate::Recommender;

/// Number of groups the paper uses.
pub const NUM_GROUPS: usize = 4;

/// Assigns each entity a quartile id in `0..NUM_GROUPS` by rank of its
/// `value` (ascending: group 0 = sparsest quartile). Ties are broken by
/// index so groups stay equal-sized.
pub fn quartile_assignment(values: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by_key(|&i| (values[i], i));
    let mut group = vec![0usize; values.len()];
    for (rank, &i) in order.iter().enumerate() {
        group[i] = (rank * NUM_GROUPS / values.len()).min(NUM_GROUPS - 1);
    }
    group
}

/// Per-group evaluation result.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Mean of the grouping value (e.g. average #interactions) per group.
    pub mean_value: [f64; NUM_GROUPS],
    /// Number of evaluated users per group.
    pub test_users: [usize; NUM_GROUPS],
    /// Metrics per group.
    pub metrics: [RankingMetrics; NUM_GROUPS],
}

/// Evaluates `model` separately on each user quartile of `values`
/// (`values[u]` is user `u`'s activity measure; indices are user ids).
pub fn evaluate_by_group(
    model: &dyn Recommender,
    test: &[TestInstance],
    values: &[usize],
    n: usize,
) -> GroupReport {
    let assignment = quartile_assignment(values);
    let mut mean_value = [0.0; NUM_GROUPS];
    let mut counts = [0usize; NUM_GROUPS];
    for (u, &v) in values.iter().enumerate() {
        mean_value[assignment[u]] += v as f64;
        counts[assignment[u]] += 1;
    }
    for g in 0..NUM_GROUPS {
        if counts[g] > 0 {
            mean_value[g] /= counts[g] as f64;
        }
    }

    let mut metrics = [RankingMetrics::default(); NUM_GROUPS];
    let mut test_users = [0usize; NUM_GROUPS];
    for g in 0..NUM_GROUPS {
        let subset: Vec<TestInstance> = test
            .iter()
            .filter(|c| assignment[c.user as usize] == g)
            .cloned()
            .collect();
        test_users[g] = subset.len();
        if !subset.is_empty() {
            metrics[g] = evaluate_at(model, &subset, n);
        }
    }
    GroupReport { mean_value, test_users, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_are_equal_sized() {
        let values: Vec<usize> = (0..100).map(|i| i * 3 % 17).collect();
        let g = quartile_assignment(&values);
        for q in 0..NUM_GROUPS {
            assert_eq!(g.iter().filter(|&&x| x == q).count(), 25);
        }
    }

    #[test]
    fn quartiles_order_by_value() {
        let values = vec![10, 1, 7, 3];
        let g = quartile_assignment(&values);
        assert_eq!(g, vec![3, 0, 2, 1]);
    }

    #[test]
    fn uneven_sizes_still_cover_all_groups() {
        let values = vec![5, 1, 3, 9, 2, 8, 7];
        let g = quartile_assignment(&values);
        assert!(g.iter().all(|&x| x < NUM_GROUPS));
        // Sparsest element lands in group 0, densest in the last group.
        assert_eq!(g[1], 0);
        assert_eq!(g[3], NUM_GROUPS - 1);
    }

    #[test]
    fn group_report_partitions_test_users() {
        struct Oracle;
        impl Recommender for Oracle {
            fn name(&self) -> &str {
                "oracle"
            }
            fn score(&self, _: usize, items: &[usize]) -> Vec<f32> {
                items.iter().map(|&v| v as f32).collect()
            }
        }
        let values = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let test: Vec<TestInstance> = (0..8)
            .map(|u| TestInstance { user: u, pos_item: 100, negatives: vec![1, 2] })
            .collect();
        let report = evaluate_by_group(&Oracle, &test, &values, 1);
        assert_eq!(report.test_users.iter().sum::<usize>(), 8);
        // Oracle always ranks item 100 first.
        for g in 0..NUM_GROUPS {
            assert_eq!(report.metrics[g].hr, 1.0);
        }
        assert!(report.mean_value[0] < report.mean_value[3]);
    }
}
