//! Heap-based partial top-K selection over score rows.
//!
//! The serving tier's core ranking kernel: given a `rows × cols` score
//! matrix, return each row's `k` best `(index, score)` pairs in descending
//! order — without sorting the whole row. Selection runs an in-place
//! bounded min-heap over the output slots (`O(cols · log k)` per row, zero
//! per-row allocation), then heap-sorts the `k` survivors.
//!
//! # Determinism
//!
//! Ordering is a *total* order: higher score first, and equal scores break
//! ties toward the **lower column index** ([`f32::total_cmp`] handles the
//! degenerate NaN/−0.0 cases so even pathological inputs rank the same way
//! everywhere). Because the order is total and rows are independent, the
//! result is a pure function of the input row — independent of thread
//! count, batch composition, and `k` itself (the top-`k` list is always a
//! prefix of the top-`k+1` list, which is what lets a micro-batcher select
//! at the batch's maximum `k` and truncate per request).
//!
//! Rows are partitioned across the deterministic kernel pool
//! ([`crate::parallel`]): each partition writes a disjoint row range of the
//! two output buffers, preserving the pool's bit-identity contract.

use crate::parallel;
use crate::Matrix;

/// Per-row top-K results: `rows × k` index and score buffers, each row in
/// descending score order (ties by ascending index).
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    rows: usize,
    k: usize,
    indices: Vec<u32>,
    scores: Vec<f32>,
}

impl TopK {
    /// Number of input rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Entries retained per row.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row `r`'s column indices, best first.
    #[inline]
    pub fn indices(&self, r: usize) -> &[u32] {
        &self.indices[r * self.k..(r + 1) * self.k]
    }

    /// Row `r`'s scores, aligned with [`TopK::indices`].
    #[inline]
    pub fn scores(&self, r: usize) -> &[f32] {
        &self.scores[r * self.k..(r + 1) * self.k]
    }

    /// Row `r` as `(index, score)` pairs, best first.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices(r).iter().copied().zip(self.scores(r).iter().copied())
    }
}

/// Does `(s_a, i_a)` outrank `(s_b, i_b)` under the total serving order
/// (higher score first, lower index on ties)?
#[inline]
fn beats(s_a: f32, i_a: u32, s_b: f32, i_b: u32) -> bool {
    match s_a.total_cmp(&s_b) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => i_a < i_b,
    }
}

/// Restores the min-heap ("worst at the root") property below slot `i` of
/// the first `len` entries of the parallel `(scores, indices)` arrays.
fn sift_down(sc: &mut [f32], idx: &mut [u32], mut i: usize, len: usize) {
    loop {
        let l = 2 * i + 1;
        if l >= len {
            return;
        }
        let r = l + 1;
        // Pick the worse (= lower-ranked) child: the one the parent must
        // not outrank if the heap is to keep the worst entry at the root.
        let mut w = l;
        if r < len && beats(sc[l], idx[l], sc[r], idx[r]) {
            w = r;
        }
        if beats(sc[i], idx[i], sc[w], idx[w]) {
            sc.swap(i, w);
            idx.swap(i, w);
            i = w;
        } else {
            return;
        }
    }
}

/// Selects the top `idx_out.len()` entries of `scores` into
/// `(idx_out, score_out)`, best first, under the deterministic total order
/// (score descending, index ascending on ties). Allocation-free.
///
/// # Panics
/// Panics when the output slices disagree in length, are empty, or are
/// longer than `scores`.
pub fn top_k_row(scores: &[f32], idx_out: &mut [u32], score_out: &mut [f32]) {
    let k = idx_out.len();
    assert_eq!(k, score_out.len(), "top_k_row: output slices must have equal length");
    assert!(k >= 1, "top_k_row: k must be at least 1");
    assert!(k <= scores.len(), "top_k_row: k = {k} exceeds row length {}", scores.len());
    for (i, (o_i, o_s)) in idx_out.iter_mut().zip(score_out.iter_mut()).enumerate() {
        *o_i = i as u32;
        *o_s = scores[i];
    }
    // Min-heapify: root becomes the worst of the first k entries.
    for i in (0..k / 2).rev() {
        sift_down(score_out, idx_out, i, k);
    }
    for (j, &s) in scores.iter().enumerate().skip(k) {
        if beats(s, j as u32, score_out[0], idx_out[0]) {
            score_out[0] = s;
            idx_out[0] = j as u32;
            sift_down(score_out, idx_out, 0, k);
        }
    }
    // In-place heapsort: extracting the minimum (worst) to the back each
    // round leaves the array in descending rank order, best first.
    for end in (1..k).rev() {
        score_out.swap(0, end);
        idx_out.swap(0, end);
        sift_down(score_out, idx_out, 0, end);
    }
}

/// Sendable base pointer pair for handing each pool partition its disjoint
/// output rows (the index buffer is `u32`, so [`parallel::par_row_chunks`]'s
/// single-`f32`-buffer contract does not fit).
struct SendOut {
    idx: *mut u32,
    sc: *mut f32,
}

impl SendOut {
    fn idx(&self) -> *mut u32 {
        self.idx
    }
    fn sc(&self) -> *mut f32 {
        self.sc
    }
}

// SAFETY: the pointers are only dereferenced through non-overlapping row
// ranges — `part_range` hands each partition a disjoint slice of rows, and
// every row is written by exactly one partition (see `top_k_rows`).
unsafe impl Send for SendOut {}
unsafe impl Sync for SendOut {}

/// Top-`k` selection for every row of `scores`, row-partitioned on the
/// deterministic kernel pool. Each output row is in descending score order
/// with ties broken toward lower column indices; the result is bit-identical
/// for every thread count.
///
/// # Panics
/// Panics when `k` is zero or exceeds the column count.
pub fn top_k_rows(scores: &Matrix, k: usize) -> TopK {
    let (rows, cols) = scores.shape();
    assert!(k >= 1, "top_k_rows: k must be at least 1");
    assert!(k <= cols, "top_k_rows: k = {k} exceeds column count {cols}");
    let mut indices = vec![0u32; rows * k];
    let mut out_scores = vec![0.0f32; rows * k];
    let src = scores.as_slice();
    // Cost estimate: one scan plus heap repairs; the scan dominates.
    let parts = parallel::planned_parts(rows, cols.max(1).saturating_mul(2));
    // This kernel manages its own two output buffers (u32 indices + f32
    // scores), so it declares both writes explicitly instead of relying on
    // `par_row_chunks`'s automatic single-output record.
    crate::sanitize::record_raw("top_k_rows", parts, rows, |_, r| {
        vec![
            crate::sanitize::Access::write(0, r.start * k..r.end * k),
            crate::sanitize::Access::write(1, r.start * k..r.end * k),
            crate::sanitize::Access::read(2, r.start * cols..r.end * cols),
        ]
    });
    if parts <= 1 {
        for r in 0..rows {
            top_k_row(
                &src[r * cols..(r + 1) * cols],
                &mut indices[r * k..(r + 1) * k],
                &mut out_scores[r * k..(r + 1) * k],
            );
        }
        return TopK { rows, k, indices, scores: out_scores };
    }
    let base = SendOut { idx: indices.as_mut_ptr(), sc: out_scores.as_mut_ptr() };
    parallel::run_parts(parts, |p| {
        let range = parallel::part_range(rows, parts, p);
        for r in range {
            // SAFETY: partitions own disjoint row ranges of both output
            // buffers, which outlive the dispatch (`run_parts` blocks until
            // every partition completes) and hold `rows * k` elements, so
            // each reconstructed row slice is in-bounds and unaliased.
            let (idx_row, sc_row) = unsafe {
                (
                    std::slice::from_raw_parts_mut(base.idx().add(r * k), k),
                    std::slice::from_raw_parts_mut(base.sc().add(r * k), k),
                )
            };
            top_k_row(&src[r * cols..(r + 1) * cols], idx_row, sc_row);
        }
    });
    TopK { rows, k, indices, scores: out_scores }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full-sort reference: indices ordered by (score desc, index asc).
    fn sort_ref(row: &[f32]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..row.len() as u32).collect();
        order.sort_by(|&a, &b| {
            row[b as usize]
                .total_cmp(&row[a as usize])
                .then(a.cmp(&b))
        });
        order
    }

    #[test]
    fn selects_and_orders_best_entries() {
        let row = [0.5, -1.0, 3.0, 2.0, 2.5];
        let mut idx = [0u32; 3];
        let mut sc = [0f32; 3];
        top_k_row(&row, &mut idx, &mut sc);
        assert_eq!(idx, [2, 4, 3]);
        assert_eq!(sc, [3.0, 2.5, 2.0]);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let row = [1.0, 2.0, 2.0, 1.0, 2.0];
        let mut idx = [0u32; 4];
        let mut sc = [0f32; 4];
        top_k_row(&row, &mut idx, &mut sc);
        assert_eq!(idx, [1, 2, 4, 0], "equal scores rank by ascending index");
    }

    #[test]
    fn k_equals_len_matches_full_sort() {
        let row = [0.0, -2.0, 7.5, 7.5, -2.0, 0.0, 1.0];
        let mut idx = vec![0u32; row.len()];
        let mut sc = vec![0f32; row.len()];
        top_k_row(&row, &mut idx, &mut sc);
        assert_eq!(idx, sort_ref(&row));
    }

    #[test]
    fn topk_is_prefix_of_larger_k() {
        let row = [0.3, 0.1, 0.3, 0.9, -0.5, 0.9, 0.0];
        let mut i5 = [0u32; 5];
        let mut s5 = [0f32; 5];
        top_k_row(&row, &mut i5, &mut s5);
        let mut i2 = [0u32; 2];
        let mut s2 = [0f32; 2];
        top_k_row(&row, &mut i2, &mut s2);
        assert_eq!(&i5[..2], &i2[..], "top-2 is a prefix of top-5");
    }

    #[test]
    fn rows_are_independent() {
        let m = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0]);
        let t = top_k_rows(&m, 2);
        assert_eq!(t.indices(0), &[3, 2]);
        assert_eq!(t.indices(1), &[0, 1]);
        assert_eq!(t.scores(0), &[4.0, 3.0]);
        assert_eq!(t.row(1).collect::<Vec<_>>(), vec![(0, 4.0), (1, 3.0)]);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let (rows, cols, k) = (37, 53, 7);
        let mut v = Vec::with_capacity(rows * cols);
        let mut s = 0x1234_5678_u64;
        for _ in 0..rows * cols {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Coarse quantization to force plenty of ties.
            v.push(((s >> 33) % 17) as f32 * 0.25 - 2.0);
        }
        let m = Matrix::from_vec(rows, cols, v);
        parallel::set_threads(1);
        let serial = top_k_rows(&m, k);
        parallel::set_threads(4);
        parallel::set_min_par_work(1);
        let pooled = top_k_rows(&m, k);
        parallel::set_threads(1);
        parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
        assert_eq!(serial, pooled, "top-K must be bit-identical across thread counts");
    }

    #[test]
    #[should_panic(expected = "exceeds column count")]
    fn oversized_k_panics() {
        top_k_rows(&Matrix::zeros(2, 3), 4);
    }
}
