//! Sparse meta-path composition.

use dgnn_tensor::{Csr, CsrBuilder};

/// Composes two adjacencies into a meta-path adjacency `A · B`, storing the
/// *path count* as the edge weight, keeping at most `max_per_row` strongest
/// targets per source and dropping self-loops.
///
/// This is how the meta-path baselines derive their homogeneous graphs:
/// `UVU = compose(ui, iu, k)` is the co-interaction graph, `VRV` the
/// shared-category graph, etc. The per-row cap bounds the quadratic blowup
/// dense meta-paths would otherwise cause (exactly the practical compromise
/// the HAN/HERec reference implementations make).
pub fn compose(a: &Csr, b: &Csr, max_per_row: usize) -> Csr {
    assert_eq!(a.cols(), b.rows(), "compose: inner dimension mismatch");
    assert!(max_per_row > 0, "compose: max_per_row must be positive");
    let mut out = CsrBuilder::new(a.rows(), b.cols());
    // Scratch accumulator reused across rows (sparse-row gather).
    let mut acc: Vec<f32> = vec![0.0; b.cols()];
    let mut touched: Vec<usize> = Vec::new();
    for r in 0..a.rows() {
        for (mid, w1) in a.row(r) {
            for (c, w2) in b.row(mid) {
                if acc[c] == 0.0 {
                    touched.push(c);
                }
                acc[c] += w1 * w2;
            }
        }
        // Drop the self-loop (a meta-path back to yourself carries no
        // collaborative signal).
        if r < acc.len() && acc[r] != 0.0 {
            acc[r] = 0.0;
        }
        if touched.len() > max_per_row {
            touched.sort_unstable_by(|&x, &y| {
                acc[y].partial_cmp(&acc[x]).expect("path counts are finite")
            });
            touched.truncate(max_per_row);
        }
        for &c in &touched {
            if acc[c] != 0.0 {
                out.push(r, c, acc[c]);
            }
        }
        // Reset scratch. `touched` may have been truncated, so re-zero by
        // scanning the original contributions again is wrong; instead zero
        // everything we may have touched via the row walk.
        for (mid, _) in a.row(r) {
            for (c, _) in b.row(mid) {
                acc[c] = 0.0;
            }
        }
        touched.clear();
    }
    out.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(rows: usize, cols: usize, entries: &[(usize, usize, f32)]) -> Csr {
        let mut b = CsrBuilder::new(rows, cols);
        for &(r, c, v) in entries {
            b.push(r, c, v);
        }
        b.build()
    }

    #[test]
    fn counts_paths() {
        // Users 0,1 both like item 0; user 1 also likes item 1.
        let ui = csr(2, 2, &[(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        let iu = ui.transpose();
        let uvu = compose(&ui, &iu, 10);
        // u0–u1 share exactly one item.
        assert_eq!(uvu.to_dense()[(0, 1)], 1.0);
        assert_eq!(uvu.to_dense()[(1, 0)], 1.0);
        // Self-loops removed.
        assert_eq!(uvu.to_dense()[(0, 0)], 0.0);
        assert_eq!(uvu.to_dense()[(1, 1)], 0.0);
    }

    #[test]
    fn respects_row_cap() {
        // One user connected to 4 others via one shared item each, with
        // increasing multiplicity so the cap keeps the strongest.
        let mut entries = Vec::new();
        for other in 1..5usize {
            for copy in 0..other {
                entries.push((0, (other - 1) * 4 + copy, 1.0));
                entries.push((other, (other - 1) * 4 + copy, 1.0));
            }
        }
        let ui = csr(5, 16, &entries);
        let iu = ui.transpose();
        let uvu = compose(&ui, &iu, 2);
        assert!(uvu.degree(0) <= 2);
        // Strongest co-interactors (users 4 and 3) survive.
        assert_eq!(uvu.row_cols(0), &[3, 4]);
    }

    #[test]
    fn matches_dense_product_without_cap() {
        let a = csr(3, 3, &[(0, 1, 2.0), (1, 2, 1.0), (2, 0, 1.0), (0, 2, 0.5)]);
        let b = csr(3, 2, &[(0, 0, 1.0), (1, 1, 3.0), (2, 0, 1.0)]);
        let c = compose(&a, &b, usize::MAX >> 1);
        let dense = a.to_dense().matmul(&b.to_dense());
        for r in 0..3 {
            for col in 0..2 {
                if r == col {
                    continue; // self-loop suppressed by compose
                }
                assert!(
                    (c.to_dense()[(r, col)] - dense[(r, col)]).abs() < 1e-6,
                    "mismatch at ({r},{col})"
                );
            }
        }
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        let a = Csr::empty(3, 4);
        let b = Csr::empty(4, 2);
        assert_eq!(compose(&a, &b, 5).nnz(), 0);
    }
}
