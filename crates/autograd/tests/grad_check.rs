//! Central finite-difference verification of every tape operation.
//!
//! Each test builds a scalar loss through one (or a few) ops, computes the
//! analytic gradient with the tape, then perturbs each input entry by ±h and
//! compares. This is the ground truth that lets the model crates trust the
//! engine.

use std::rc::Rc;

use dgnn_autograd::{ParamSet, Recorder, Tape, Var};
use dgnn_tensor::{Csr, CsrBuilder, Matrix};

const H: f32 = 1e-3;
const TOL: f32 = 2e-2; // relative-ish tolerance; f32 finite differences are noisy

/// Checks `d loss / d input` for a scalar-valued builder, entry by entry.
///
/// `build` receives a tape plus the input leaf and must return the scalar
/// loss variable.
fn check_grad(input: Matrix, build: impl Fn(&mut Tape, Var) -> Var) {
    // Analytic gradient.
    let mut params = ParamSet::new();
    let pid = params.add("x", input.clone());
    let mut tape = Tape::new();
    let x = tape.param(&params, pid);
    let loss = build(&mut tape, x);
    params.zero_grads();
    tape.backward_into(loss, &mut params);
    let analytic = params.grad(pid).clone();

    // Finite differences.
    let eval = |m: &Matrix| -> f32 {
        let mut t = Tape::new();
        let x = t.constant(m.clone());
        let l = build(&mut t, x);
        t.value(l)[(0, 0)]
    };
    for r in 0..input.rows() {
        for c in 0..input.cols() {
            let mut plus = input.clone();
            plus[(r, c)] += H;
            let mut minus = input.clone();
            minus[(r, c)] -= H;
            let fd = (eval(&plus) - eval(&minus)) / (2.0 * H);
            let an = analytic[(r, c)];
            let denom = fd.abs().max(an.abs()).max(1.0);
            assert!(
                (fd - an).abs() / denom < TOL,
                "grad mismatch at ({r},{c}): analytic {an}, finite-diff {fd}"
            );
        }
    }
}

fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    Matrix::from_fn(rows, cols, |_, _| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
    })
}

#[test]
fn grad_add_sub_scale() {
    check_grad(sample(3, 2, 1), |t, x| {
        let y = t.scale(x, 2.5);
        let z = t.add(x, y);
        let w = t.sub(z, x);
        t.sum_all(w)
    });
}

#[test]
fn grad_mul_elementwise() {
    check_grad(sample(2, 3, 2), |t, x| {
        let c = t.constant(Matrix::from_fn(2, 3, |r, c| (r + 2 * c) as f32 * 0.3 + 0.1));
        let y = t.mul(x, c);
        t.sum_all(y)
    });
}

#[test]
fn grad_mul_self_is_two_x() {
    // d/dx Σx² = 2x exercises the duplicate-parent accumulation path.
    check_grad(sample(2, 2, 3), |t, x| {
        let y = t.mul(x, x);
        t.sum_all(y)
    });
}

#[test]
fn grad_matmul_left_and_right() {
    check_grad(sample(2, 3, 4), |t, x| {
        let b = t.constant(Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.4));
        let p = t.matmul(x, b);
        let sq = t.mul(p, p);
        t.mean_all(sq)
    });
    check_grad(sample(3, 2, 5), |t, x| {
        let a = t.constant(Matrix::from_fn(2, 3, |r, c| (r * c) as f32 * 0.3 + 0.2));
        let p = t.matmul(a, x);
        t.sum_all(p)
    });
}

#[test]
fn grad_transpose() {
    check_grad(sample(2, 3, 6), |t, x| {
        let xt = t.transpose(x);
        let sq = t.mul(xt, xt);
        t.sum_all(sq)
    });
}

#[test]
fn grad_activations() {
    for seed in [7u64, 8, 9] {
        check_grad(sample(2, 3, seed), |t, x| {
            let s = t.sigmoid(x);
            t.sum_all(s)
        });
        check_grad(sample(2, 3, seed + 10), |t, x| {
            let s = t.tanh(x);
            t.sum_all(s)
        });
        check_grad(sample(2, 3, seed + 20), |t, x| {
            let s = t.leaky_relu(x, 0.2);
            t.sum_all(s)
        });
        check_grad(sample(2, 3, seed + 30), |t, x| {
            let s = t.softplus(x);
            t.sum_all(s)
        });
        check_grad(sample(2, 3, seed + 40), |t, x| {
            let s = t.exp(x);
            t.sum_all(s)
        });
    }
}

#[test]
fn grad_add_row_broadcast() {
    // Gradient w.r.t. the broadcast row vector.
    check_grad(sample(1, 4, 11), |t, row| {
        let a = t.constant(sample(3, 4, 12));
        let y = t.add_row(a, row);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
    // Gradient w.r.t. the matrix.
    check_grad(sample(3, 4, 13), |t, a| {
        let row = t.constant(sample(1, 4, 14));
        let y = t.add_row(a, row);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_mul_row_broadcast() {
    check_grad(sample(1, 3, 15), |t, row| {
        let a = t.constant(sample(4, 3, 16));
        let y = t.mul_row(a, row);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
    check_grad(sample(4, 3, 17), |t, a| {
        let row = t.constant(sample(1, 3, 18));
        let y = t.mul_row(a, row);
        t.sum_all(y)
    });
}

#[test]
fn grad_mul_col_broadcast() {
    check_grad(sample(4, 1, 19), |t, col| {
        let a = t.constant(sample(4, 3, 20));
        let y = t.mul_col(a, col);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
    check_grad(sample(4, 3, 21), |t, a| {
        let col = t.constant(sample(4, 1, 22));
        let y = t.mul_col(a, col);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_reductions() {
    check_grad(sample(3, 3, 23), |t, x| t.mean_all(x));
    check_grad(sample(3, 3, 24), |t, x| {
        let rs = t.row_sum(x);
        let sq = t.mul(rs, rs);
        t.sum_all(sq)
    });
    check_grad(sample(3, 3, 25), |t, x| {
        let cm = t.col_mean(x);
        let sq = t.mul(cm, cm);
        t.sum_all(sq)
    });
}

#[test]
fn grad_concat_and_slice() {
    check_grad(sample(2, 3, 26), |t, x| {
        let other = t.constant(sample(2, 2, 27));
        let cat = t.concat_cols(&[x, other]);
        let sq = t.mul(cat, cat);
        t.sum_all(sq)
    });
    check_grad(sample(2, 5, 28), |t, x| {
        let sl = t.slice_cols(x, 1, 4);
        let sq = t.mul(sl, sl);
        t.sum_all(sq)
    });
}

#[test]
fn grad_gather_with_duplicates() {
    check_grad(sample(4, 3, 29), |t, x| {
        let idx = Rc::new(vec![0usize, 2, 2, 3, 0]);
        let g = t.gather(x, idx);
        let sq = t.mul(g, g);
        t.sum_all(sq)
    });
}

fn toy_csr() -> Rc<Csr> {
    let mut b = CsrBuilder::new(3, 4);
    b.push(0, 0, 0.5);
    b.push(0, 2, 1.5);
    b.push(1, 1, -0.7);
    b.push(2, 3, 2.0);
    b.push(2, 0, 0.3);
    Rc::new(b.build())
}

#[test]
fn grad_spmm() {
    let adj = toy_csr();
    check_grad(sample(4, 2, 30), move |t, x| {
        let y = t.spmm(&adj, x);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_layer_norm() {
    check_grad(sample(3, 5, 31), |t, x| {
        let y = t.layer_norm_rows(x, 1e-5);
        let w = t.constant(sample(3, 5, 32));
        let p = t.mul(y, w);
        t.sum_all(p)
    });
}

#[test]
fn grad_row_l2_normalize() {
    // Keep inputs away from the zero-norm kink.
    let x = sample(3, 4, 33).map(|v| v + 2.0);
    check_grad(x, |t, x| {
        let y = t.l2_normalize_rows(x, 1e-9);
        let w = t.constant(sample(3, 4, 34));
        let p = t.mul(y, w);
        t.sum_all(p)
    });
}

#[test]
fn grad_row_dots() {
    check_grad(sample(4, 3, 35), |t, x| {
        let b = t.constant(sample(4, 3, 36));
        let d = t.row_dots(x, b);
        let sq = t.mul(d, d);
        t.sum_all(sq)
    });
}

#[test]
fn grad_softmax_rows() {
    check_grad(sample(3, 4, 37), |t, x| {
        let s = t.softmax_rows(x);
        let w = t.constant(sample(3, 4, 38));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
}

#[test]
fn grad_segment_softmax() {
    let seg = Rc::new(vec![0usize, 2, 5, 6]);
    check_grad(sample(6, 1, 39), move |t, x| {
        let s = t.segment_softmax(x, Rc::clone(&seg));
        let w = t.constant(sample(6, 1, 40));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
}

#[test]
fn grad_segment_weighted_sum() {
    let seg = Rc::new(vec![0usize, 2, 5, 6]);
    // w.r.t. the weights
    let seg_w = Rc::clone(&seg);
    check_grad(sample(6, 1, 41), move |t, w| {
        let v = t.constant(sample(6, 3, 42));
        let out = t.segment_weighted_sum(w, v, Rc::clone(&seg_w));
        let sq = t.mul(out, out);
        t.sum_all(sq)
    });
    // w.r.t. the values
    check_grad(sample(6, 3, 43), move |t, v| {
        let w = t.constant(sample(6, 1, 44));
        let out = t.segment_weighted_sum(w, v, Rc::clone(&seg));
        let sq = t.mul(out, out);
        t.sum_all(sq)
    });
}

#[test]
fn grad_dropout_mask_passes_through() {
    let mask = Matrix::from_vec(2, 3, vec![0.0, 2.0, 0.0, 2.0, 2.0, 0.0]);
    check_grad(sample(2, 3, 45), move |t, x| {
        let y = t.dropout_mask(x, mask.clone());
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_bpr_composite() {
    // Full BPR pipeline: embeddings → gather → row_dots → bpr_loss.
    check_grad(sample(5, 3, 46), |t, emb| {
        let users = Rc::new(vec![0usize, 1, 2]);
        let pos = Rc::new(vec![3usize, 4, 3]);
        let neg = Rc::new(vec![4usize, 3, 4]);
        let ue = t.gather(emb, users);
        let pe = t.gather(emb, pos);
        let ne = t.gather(emb, neg);
        let ps = t.row_dots(ue, pe);
        let ns = t.row_dots(ue, ne);
        t.bpr_loss(ps, ns)
    });
}

#[test]
fn grad_deep_composite_gnn_like() {
    // A two-layer mini-GNN with every structural op in one graph:
    // gather → spmm → leaky_relu → layer_norm → concat → row_dots → loss.
    let adj = toy_csr(); // 3×4
    check_grad(sample(4, 3, 47), move |t, emb| {
        let h1 = t.spmm(&adj, emb); // 3×3
        let h1 = t.leaky_relu(h1, 0.2);
        let h1n = t.layer_norm_rows(h1, 1e-5);
        let idx = Rc::new(vec![0usize, 1, 2]);
        let h0 = t.gather(emb, idx); // 3×3
        let cat = t.concat_cols(&[h0, h1n]); // 3×6
        let other = t.constant(sample(3, 6, 48));
        let scores = t.row_dots(cat, other);
        let sq = t.mul(scores, scores);
        t.mean_all(sq)
    });
}
