//! Independent soundness proof for a [`RewritePlan`].
//!
//! The optimizer ([`crate::optimize`]) and this checker answer the same
//! question — "does this action table produce bit-identical values?" — but
//! deliberately share no code, mirroring the planner/checker split for
//! memory plans. The optimizer builds value numbers and liveness summaries
//! forward while choosing actions; the checker starts from the *claimed*
//! plan and re-derives every obligation directly from the trace: a
//! congruence closure grown only from copies it has already verified, an
//! exhaustive enumeration of every read event that could touch a stolen
//! buffer, and an independent loss-cone computation (a reverse marking
//! sweep, where the optimizer uses an explicit-stack descent). A bug in the
//! optimizer's bookkeeping cannot also hide here, so a plan that passes
//! [`check_rewrites`] is safe to execute even if the optimizer is wrong.
//!
//! The proof obligations:
//!
//! 1. **coverage & acyclicity** — the table covers the trace exactly, and
//!    every patch references a strictly earlier node, so the rewritten
//!    graph is a DAG by construction;
//! 2. **copies are congruent** (`CopyOf`) — same op kind, bit-equal
//!    attribute, equal shape and parameter identity, operands equivalent
//!    under the closure of already-proven copies; never a constant (opaque
//!    data), dropout (fresh mask per step), an elided gather (no value), or
//!    a source whose buffer a steal retires before the copy reads it;
//! 3. **folds are closed and invariant** (`Fold`) — each cache slot is
//!    claimed by exactly one node, every input of a folded node is itself
//!    folded (the region reaches its leaves), and the region contains no
//!    parameter or dropout node, whose values change between steps;
//! 4. **steals retire dead buffers** (`Steal`) — the op has an in-place
//!    epilogue, its operands are distinct, and *every* read of the stolen
//!    operand happens no later than the steal: plain forward consumers,
//!    CSE copies of it, fused matmuls reading it as an elided gather's
//!    table, and — enumerated via [`grad_reads`] over the loss cone — all
//!    backward reads, which happen after every forward step and therefore
//!    forbid the steal outright; the operand is not pinned (loss/declared
//!    outputs) and is stolen at most once;
//! 5. **streams are semantics-preserving** (`Stream`) — only ops with a
//!    proven single-pass kernel;
//! 6. **gather→matmul pairs are exact** (`ElideGather`/`GatherMatMul`) —
//!    one-to-one pairing, the gather's only reader is its fused matmul's
//!    left operand, nothing else (copies, steals) touches the elided value,
//!    and the matmul lies outside the loss cone: its gradient rule reads
//!    both input values, which would need the never-materialized gather.

use std::collections::HashMap;

use dgnn_autograd::meta::{grad_reads, InputReads};
use dgnn_autograd::{RewriteAction, RewritePlan, Var};

use crate::tracer::ShapeTracer;

/// Evidence that a rewrite plan passed every proof obligation.
#[derive(Debug, Clone, Copy)]
pub struct RewriteProof {
    /// Nodes covered by the proof.
    pub nodes: usize,
    /// CSE copies proven congruent.
    pub copies: usize,
    /// Fold slots proven closed and training-invariant.
    pub folds: usize,
    /// Buffer steals proven to retire dead values.
    pub steals: usize,
    /// Streaming kernel substitutions proven semantics-preserving.
    pub streams: usize,
    /// gather→matmul pairs proven exact.
    pub fusions: usize,
    /// Individual read events enumerated while proving the steals.
    pub reads_checked: usize,
}

/// A concrete violation found in a claimed rewrite plan.
#[derive(Debug, Clone)]
pub struct RewriteViolation {
    /// What is wrong, with the offending node/action inlined.
    pub message: String,
}

impl std::fmt::Display for RewriteViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rewrite plan violation: {}", self.message)
    }
}

fn violation<T>(message: String) -> Result<T, RewriteViolation> {
    Err(RewriteViolation { message })
}

/// Union-find representative with path halving. The closure is grown
/// exclusively from copies this checker has already verified, so "same
/// class" really means "proven bit-identical at run time".
fn find(uf: &mut [u32], mut i: u32) -> u32 {
    while uf[i as usize] != i {
        uf[i as usize] = uf[uf[i as usize] as usize];
        i = uf[i as usize];
    }
    i
}

/// Verifies a [`RewritePlan`] against the trace it claims to rewrite.
///
/// `loss` and `outputs` must be the same roots the plan was built with —
/// the checker re-derives the loss cone and every pinning obligation from
/// them, independently of the optimizer.
pub fn check_rewrites(
    tracer: &ShapeTracer,
    loss: Var,
    outputs: &[Var],
    plan: &RewritePlan,
) -> Result<RewriteProof, RewriteViolation> {
    let nodes = tracer.nodes();
    let n = nodes.len();
    let l = loss.index();
    if plan.len() != n {
        return violation(format!("plan covers {} nodes but the trace has {n}", plan.len()));
    }
    if l >= n {
        return violation(format!("loss node {l} out of range for a trace of {n} nodes"));
    }

    let mut pinned = vec![false; n];
    pinned[l] = true;
    for v in outputs {
        if v.index() >= n {
            return violation(format!("output node {} out of range", v.index()));
        }
        pinned[v.index()] = true;
    }

    // Loss cone by reverse marking: node inputs always precede the node, so
    // one descending sweep from the loss reaches closure.
    let mut cone = vec![false; n];
    cone[l] = true;
    for i in (0..=l).rev() {
        if cone[i] {
            for &j in &nodes[i].inputs {
                cone[j] = true;
            }
        }
    }

    // Every reader of every node, rebuilt from the raw trace.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (c, node) in nodes.iter().enumerate() {
        for &i in &node.inputs {
            consumers[i].push(c);
        }
    }

    let mut proof = RewriteProof {
        nodes: n,
        copies: 0,
        folds: 0,
        steals: 0,
        streams: 0,
        fusions: 0,
        reads_checked: 0,
    };
    let mut uf: Vec<u32> = (0..n as u32).collect();
    let mut slot_owner: HashMap<u32, usize> = HashMap::new();
    let mut steal_time: Vec<Option<usize>> = vec![None; n];
    for (i, _) in nodes.iter().enumerate() {
        if let RewriteAction::Steal = plan.action(i) {
            let src = match nodes[i].inputs.first() {
                Some(&s) => s,
                None => return violation(format!("node {i} steals but has no inputs")),
            };
            if let Some(prev) = steal_time[src] {
                return violation(format!(
                    "node {src}'s buffer is stolen twice (nodes {prev} and {i})"
                ));
            }
            steal_time[src] = Some(i);
        }
    }

    for i in 0..n {
        let node = &nodes[i];
        match plan.action(i) {
            RewriteAction::Compute => {}

            // ---- obligation 2: copies -------------------------------------
            RewriteAction::CopyOf(j) => {
                let j = j as usize;
                if j >= i {
                    return violation(format!("node {i} copies from {j}, not an earlier node"));
                }
                let src = &nodes[j];
                if src.op != node.op {
                    return violation(format!(
                        "node {i} ({}) copies from node {j} ({}): different ops",
                        node.op, src.op
                    ));
                }
                if matches!(node.op, "constant" | "dropout") {
                    return violation(format!(
                        "node {i}: {} values are never provably equal across nodes",
                        node.op
                    ));
                }
                if src.attr != node.attr {
                    return violation(format!(
                        "node {i} copies from node {j}: op attributes differ \
                         ({:#x} vs {:#x})",
                        node.attr, src.attr
                    ));
                }
                if src.shape != node.shape {
                    return violation(format!(
                        "node {i} copies from node {j}: shapes {:?} vs {:?} differ",
                        node.shape, src.shape
                    ));
                }
                if src.param != node.param {
                    return violation(format!(
                        "node {i} copies from node {j}: different parameters"
                    ));
                }
                if plan.action(j) == RewriteAction::ElideGather {
                    return violation(format!(
                        "node {i} copies from node {j}, whose value is elided"
                    ));
                }
                if let Some(t) = steal_time[j] {
                    if t < i {
                        return violation(format!(
                            "node {i} copies from node {j}, whose buffer node {t} steals first"
                        ));
                    }
                }
                if src.inputs.len() != node.inputs.len() {
                    return violation(format!(
                        "node {i} copies from node {j}: operand counts differ"
                    ));
                }
                for (p, (&a, &b)) in node.inputs.iter().zip(&src.inputs).enumerate() {
                    if a != b && find(&mut uf, a as u32) != find(&mut uf, b as u32) {
                        return violation(format!(
                            "node {i} copies from node {j}, but operand {p} \
                             ({a} vs {b}) is not proven equal"
                        ));
                    }
                }
                let (ri, rj) = (find(&mut uf, i as u32), find(&mut uf, j as u32));
                uf[ri as usize] = rj;
                proof.copies += 1;
            }

            // ---- obligation 3: folds --------------------------------------
            RewriteAction::Fold(s) => {
                if let Some(&other) = slot_owner.get(&s) {
                    return violation(format!(
                        "fold slot {s} claimed by both node {other} and node {i}"
                    ));
                }
                slot_owner.insert(s, i);
                if matches!(node.op, "param" | "dropout") {
                    return violation(format!(
                        "node {i} ({}) is folded but its value changes between steps",
                        node.op
                    ));
                }
                for &j in &node.inputs {
                    if !matches!(plan.action(j), RewriteAction::Fold(_)) {
                        return violation(format!(
                            "folded node {i} reads node {j}, which is outside the fold region"
                        ));
                    }
                }
                proof.folds += 1;
            }

            // ---- obligation 4: steals -------------------------------------
            RewriteAction::Steal => {
                if !matches!(node.op, "add" | "sub" | "add_row" | "scale" | "neg" | "add_scalar") {
                    return violation(format!(
                        "node {i} ({}) has no in-place epilogue to steal into",
                        node.op
                    ));
                }
                let src = nodes[i].inputs[0];
                if nodes[i].inputs.iter().skip(1).any(|&b| b == src) {
                    return violation(format!(
                        "node {i} steals operand {src} which aliases its other operand"
                    ));
                }
                if pinned[src] {
                    return violation(format!(
                        "node {i} steals node {src}, which is read after the step"
                    ));
                }
                if plan.action(src) == RewriteAction::ElideGather {
                    return violation(format!(
                        "node {i} steals node {src}, whose value is elided"
                    ));
                }
                // Forward reads: every consumer recomputes from its inputs
                // in the worst case (rewrite fallbacks), so all of them —
                // whatever their own action — must precede the steal.
                for &c in &consumers[src] {
                    proof.reads_checked += 1;
                    if c > i {
                        return violation(format!(
                            "node {i} steals node {src}, but node {c} reads it later"
                        ));
                    }
                }
                // CSE copies read their source at copy time; fused matmuls
                // read an elided gather's table at matmul time.
                for k in 0..n {
                    match plan.action(k) {
                        RewriteAction::CopyOf(j) if j as usize == src => {
                            proof.reads_checked += 1;
                            if k > i {
                                return violation(format!(
                                    "node {i} steals node {src}, but node {k} copies it later"
                                ));
                            }
                        }
                        RewriteAction::GatherMatMul => {
                            let g = nodes[k].inputs[0];
                            if nodes[g].op == "gather" && nodes[g].inputs.first() == Some(&src) {
                                proof.reads_checked += 1;
                                if k > i {
                                    return violation(format!(
                                        "node {i} steals node {src}, but the fused matmul \
                                         {k} reads it as a gather table later"
                                    ));
                                }
                            }
                        }
                        _ => {}
                    }
                }
                // Backward reads happen after every forward step, so any at
                // all forbids the steal.
                for &c in &consumers[src] {
                    if !cone[c] {
                        continue;
                    }
                    proof.reads_checked += 1;
                    let reads = grad_reads(nodes[c].op);
                    let hit = match reads.inputs {
                        InputReads::None => false,
                        InputReads::First => nodes[c].inputs.first() == Some(&src),
                        InputReads::All => true,
                    };
                    if hit {
                        return violation(format!(
                            "node {i} steals node {src}, but node {c} ({}) reads its \
                             value during backward",
                            nodes[c].op
                        ));
                    }
                }
                proof.reads_checked += 1;
                if cone[src] && grad_reads(nodes[src].op).output {
                    return violation(format!(
                        "node {i} steals node {src} ({}), whose gradient rule reads \
                         its own output",
                        nodes[src].op
                    ));
                }
                proof.steals += 1;
            }

            // ---- obligation 5: streams ------------------------------------
            RewriteAction::Stream => {
                if !matches!(node.op, "add_row" | "mul_row" | "mul_col") {
                    return violation(format!(
                        "node {i} ({}) has no streaming kernel",
                        node.op
                    ));
                }
                proof.streams += 1;
            }

            // ---- obligation 6: gather→matmul pairs ------------------------
            RewriteAction::ElideGather => {
                if node.op != "gather" {
                    return violation(format!("node {i} ({}) is not a gather", node.op));
                }
                if pinned[i] {
                    return violation(format!(
                        "node {i}'s gather is elided but its value is read after the step"
                    ));
                }
                match consumers[i].as_slice() {
                    [m] => {
                        let m = *m;
                        if plan.action(m) != RewriteAction::GatherMatMul {
                            return violation(format!(
                                "elided gather {i}'s consumer {m} is not a fused matmul"
                            ));
                        }
                        if nodes[m].inputs.first() != Some(&i) {
                            return violation(format!(
                                "elided gather {i} is not the fused matmul {m}'s left operand"
                            ));
                        }
                        if nodes[m].inputs.get(1) == Some(&i) {
                            return violation(format!(
                                "elided gather {i} is also the fused matmul {m}'s right operand"
                            ));
                        }
                    }
                    readers => {
                        return violation(format!(
                            "elided gather {i} has {} readers; fusion needs exactly one",
                            readers.len()
                        ));
                    }
                }
                for k in 0..n {
                    if plan.action(k) == RewriteAction::CopyOf(i as u32) {
                        return violation(format!(
                            "node {k} copies from gather {i}, whose value is elided"
                        ));
                    }
                }
                if let Some(t) = steal_time[i] {
                    return violation(format!(
                        "node {t} steals from gather {i}, whose value is elided"
                    ));
                }
            }
            RewriteAction::GatherMatMul => {
                if node.op != "matmul" {
                    return violation(format!("node {i} ({}) is not a matmul", node.op));
                }
                let g = node.inputs[0];
                if nodes[g].op != "gather" || plan.action(g) != RewriteAction::ElideGather {
                    return violation(format!(
                        "fused matmul {i}'s left operand {g} is not an elided gather"
                    ));
                }
                if cone[i] {
                    return violation(format!(
                        "fused matmul {i} is in the loss cone; its gradient would read \
                         the elided gather's value"
                    ));
                }
                proof.fusions += 1;
            }
        }
    }

    // Pairing is one-to-one: each fused matmul consumed a distinct elided
    // gather (its unique left operand), and each elided gather demanded a
    // fused-matmul consumer — equal counts close the bijection.
    let elided = (0..n).filter(|&i| plan.action(i) == RewriteAction::ElideGather).count();
    if elided != proof.fusions {
        return violation(format!(
            "{elided} elided gathers but {} fused matmuls",
            proof.fusions
        ));
    }

    Ok(proof)
}

#[cfg(test)]
mod tests {
    use dgnn_autograd::{ParamSet, Recorder};
    use dgnn_tensor::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn chain() -> (ShapeTracer, Var, Var, Var) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let w = params.add("w", Init::Uniform(0.5).build(3, 3, &mut rng));
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let s = tr.sigmoid(wv);
        let t = tr.tanh(wv);
        let loss = tr.mean_all(s);
        (tr, t, s, loss)
    }

    #[test]
    fn incongruent_copies_are_rejected() {
        let (tr, t, s, loss) = chain();
        let mut actions = vec![RewriteAction::Compute; tr.num_nodes()];
        actions[t.index()] = RewriteAction::CopyOf(s.index() as u32); // tanh ≠ sigmoid
        let plan = RewritePlan::new(actions, 0);
        let err = check_rewrites(&tr, loss, &[], &plan).unwrap_err();
        assert!(err.to_string().contains("different ops"), "{err}");
    }

    #[test]
    fn steals_of_backward_read_values_are_rejected() {
        let (tr, _, s, loss) = chain();
        // sigmoid's gradient reads its own output; stealing it is unsound.
        let mut actions = vec![RewriteAction::Compute; tr.num_nodes()];
        actions[loss.index()] = RewriteAction::Compute;
        // mean_all(s): the mean node's first input is s.
        // mean_all is not a steal epilogue, so fake one via an add chain.
        let _ = actions;
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let w = params.add("w", Init::Uniform(0.5).build(3, 3, &mut rng));
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let sg = tr.sigmoid(wv);
        let ng = tr.neg(sg); // first operand sg is read by its own backward
        let loss = tr.mean_all(ng);
        let mut actions = vec![RewriteAction::Compute; tr.num_nodes()];
        actions[ng.index()] = RewriteAction::Steal;
        let plan = RewritePlan::new(actions, 0);
        let err = check_rewrites(&tr, loss, &[], &plan).unwrap_err();
        assert!(err.to_string().contains("reads its own output"), "{err}");
        let _ = s;
    }

    #[test]
    fn steals_with_later_readers_are_rejected() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let w = params.add("w", Init::Uniform(0.5).build(3, 3, &mut rng));
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let a = tr.add(wv, wv);
        let b = tr.neg(a);
        let c = tr.add(a, b); // reads `a` after the neg
        let loss = tr.mean_all(c);
        let mut actions = vec![RewriteAction::Compute; tr.num_nodes()];
        actions[b.index()] = RewriteAction::Steal;
        let plan = RewritePlan::new(actions, 0);
        let err = check_rewrites(&tr, loss, &[], &plan).unwrap_err();
        assert!(err.to_string().contains("reads it later"), "{err}");
    }

    #[test]
    fn open_fold_regions_are_rejected() {
        let (tr, t, _, loss) = chain();
        // tanh(param): its input is not folded (and could not be).
        let mut actions = vec![RewriteAction::Compute; tr.num_nodes()];
        actions[t.index()] = RewriteAction::Fold(0);
        let plan = RewritePlan::new(actions, 1);
        let err = check_rewrites(&tr, loss, &[], &plan).unwrap_err();
        assert!(err.to_string().contains("outside the fold region"), "{err}");
    }

    #[test]
    fn gather_fusion_inside_the_loss_cone_is_rejected() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let emb = params.add("emb", Init::Uniform(0.5).build(8, 3, &mut rng));
        let w = params.add("w", Init::Uniform(0.5).build(3, 3, &mut rng));
        let mut tr = ShapeTracer::new();
        let table = tr.param(&params, emb);
        let wv = tr.param(&params, w);
        let idx = std::rc::Rc::new(vec![0usize, 2, 4]);
        let g = tr.gather(table, idx);
        let m = tr.matmul(g, wv);
        let s = tr.sigmoid(m);
        let loss = tr.mean_all(s);
        let mut actions = vec![RewriteAction::Compute; tr.num_nodes()];
        actions[g.index()] = RewriteAction::ElideGather;
        actions[m.index()] = RewriteAction::GatherMatMul;
        let plan = RewritePlan::new(actions, 0);
        let err = check_rewrites(&tr, loss, &[], &plan).unwrap_err();
        assert!(err.to_string().contains("loss cone"), "{err}");
    }

    #[test]
    fn identity_plans_prove_trivially() {
        let (tr, _, _, loss) = chain();
        let plan = RewritePlan::new(vec![RewriteAction::Compute; tr.num_nodes()], 0);
        let proof = check_rewrites(&tr, loss, &[], &plan).unwrap();
        assert_eq!(proof.nodes, tr.num_nodes());
        assert_eq!(proof.copies + proof.steals + proof.folds + proof.fusions, 0);
    }
}
