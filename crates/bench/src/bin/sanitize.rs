//! **Race-sanitizer gate**: runs the pooled-kernel battery under
//! shadow-access tracking, proves every dispatch with the independent
//! disjointness checker, measures the overhead sanitize mode adds to a
//! dispatch-heavy workload, and exports the result as observability
//! gauges.
//!
//! ```text
//! sanitize              print the proof summary, write results/sanitize.json
//! sanitize --check      additionally exit 1 unless every registered kernel
//!                       contract was exercised AND proved violation-free
//! ```
//!
//! The `--check` mode is CI's admission gate for parallel kernels: a new
//! pooled kernel that is registered in the contract table but absent from
//! the battery (or vice versa), or any dispatch the prover cannot certify,
//! fails the run.

use std::process::ExitCode;
use std::time::Instant;

use dgnn_analysis::race_checker::{check_dispatches, contract_names, RaceReport};
use dgnn_tensor::gemm;
use dgnn_tensor::parallel;
use dgnn_tensor::sanitize;
use dgnn_tensor::{top_k_rows, Csr, CsrBuilder, Matrix};

/// Battery repetitions for the timing comparison; kept well under the
/// per-thread dispatch-log cap so the proof covers a full census.
const TIMING_ITERS: usize = 40;

/// Deterministic pseudo-random matrix (LCG), bounded away from zero so it
/// is safe as a divisor.
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = ((s >> 33) % 1000) as f32 / 250.0 - 2.0;
        if v.abs() < 0.1 { 0.5 } else { v }
    })
}

fn csr(rows: usize, cols: usize, seed: u64) -> Csr {
    let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
    let mut b = CsrBuilder::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s >> 61 == 0 {
                b.push(r, c, ((s >> 33) % 100) as f32 / 50.0 - 1.0);
            }
        }
    }
    b.build()
}

/// Drives every kernel in the race checker's contract table through the
/// public API at sizes that fan out across the pool. Mirrors the
/// integration battery in `tests/tests/race_sanitizer.rs` at bench scale.
///
/// Runs twice — legacy scalar backend (historical kernel names) and the
/// packed Generic backend (`gemm_*_packed` dispatches) — so every entry in
/// the contract table is exercised regardless of host SIMD support.
fn run_kernel_battery(scale: usize) {
    gemm::set_backend(Some(gemm::Backend::Scalar));
    run_backend_battery(scale);
    gemm::set_backend(Some(gemm::Backend::Generic));
    run_backend_battery(scale);
    gemm::set_backend(None);
}

fn run_backend_battery(scale: usize) {
    let (r, k) = (8 * scale, 4 * scale);
    let a = mat(r, k, 1);
    let b = mat(k, r, 2);
    let g = mat(r, k, 3);
    let row = mat(1, k, 4);
    let col = mat(r, 1, 5);
    let idx: Vec<usize> = (0..r).map(|i| (i * 5) % r).collect();

    let _ = a.matmul(&b);
    let _ = a.matmul_tn(&g);
    let _ = a.matmul_nt(&g);
    let mut acc = mat(r, r, 6);
    acc.matmul_nt_acc(&g, &mat(r, k, 7));
    let _ = a.add(&g);
    let _ = a.sub(&g);
    let _ = a.mul_elem(&g);
    let _ = a.div_elem(&g);
    let _ = a.leaky_relu_grad(&g, 0.1);
    let _ = a.relu_grad(&g);
    let _ = a.tanh_grad(&g);
    let _ = a.sigmoid_grad(&g);
    let _ = a.softplus_grad(&g);
    let _ = a.map(|x| x * 2.0 + 1.0);
    let mut m = a.clone();
    m.add_assign(&g);
    m.axpy(0.5, &g);
    m.sub_assign(&g);
    m.scale_assign(1.25);
    m.add_scalar_assign(-0.5);
    let _ = a.add_row_fused(&row);
    let _ = a.mul_row_fused(&row);
    let _ = a.mul_col_fused(&col);
    let _ = a.gather_matmul(&idx, &b);
    let _ = a.gather_matmul_nt(&idx, &g);
    let _ = a.gather_rows(&idx);
    let mut sc = Matrix::zeros(r, k);
    sc.scatter_add_rows(&idx, &a);
    let _ = a.l2_normalize_rows(1e-6);
    let _ = a.softmax_rows();
    let _ = a.layer_norm_rows(1e-6);
    let y = a.layer_norm_rows(1e-6);
    let _ = Matrix::layer_norm_rows_grad(&a, &y, &g, 1e-6);
    let _ = csr(r, r, 8).spmm(&mat(r, k, 9));
    let _ = top_k_rows(&a, 3);
}

fn timed(iters: usize, scale: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        run_kernel_battery(scale);
    }
    start.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check");

    // Fan out even the small battery shapes so the proof covers real
    // multi-partition dispatches (thread count still honors DGNN_THREADS).
    parallel::set_min_par_work(1);

    // Proof pass: one sanitized battery, full log, independent check.
    sanitize::set_enabled(true);
    let _ = sanitize::take_log();
    run_kernel_battery(8);
    let log = sanitize::take_log();
    let dropped = sanitize::dropped_dispatches();
    let report: RaceReport = check_dispatches(&log);
    sanitize::set_enabled(false);

    // Overhead pass: identical work with tracking off vs on. The on-pass
    // log is drained afterwards so the cap never truncates a later proof.
    sanitize::set_enabled(false);
    let _ = timed(2, 4); // warm the pool and caches
    let off = timed(TIMING_ITERS, 4);
    sanitize::set_enabled(true);
    let _ = sanitize::take_log();
    let on = timed(TIMING_ITERS, 4);
    let _ = sanitize::take_log();
    sanitize::set_enabled(false);
    let overhead_pct = 100.0 * (on - off) / off.max(1e-9);

    let registered = contract_names().len();
    println!("=== Race sanitizer: shadow-access disjointness proof ===\n");
    print!("{report}");
    println!(
        "kernels: {} proved / {} registered; dropped dispatches: {dropped}",
        report.kernels_proved.len(),
        registered
    );
    println!(
        "sanitize-mode overhead: {overhead_pct:+.1}% \
         ({off:.3}s off vs {on:.3}s on, {TIMING_ITERS} battery iters)"
    );

    // Export the gate's numbers as gauges through the one snapshot
    // serializer every other benchmark artifact uses.
    dgnn_obs::reset();
    dgnn_obs::enable();
    dgnn_obs::gauge_set("sanitize/kernels_proved", report.kernels_proved.len() as f64);
    dgnn_obs::gauge_set("sanitize/kernels_registered", registered as f64);
    dgnn_obs::gauge_set("sanitize/violations", report.violations.len() as f64);
    dgnn_obs::gauge_set("sanitize/dispatches", report.dispatches as f64);
    dgnn_obs::gauge_set("sanitize/pairs_checked", report.pairs_checked as f64);
    dgnn_obs::gauge_set("sanitize/overhead_pct", overhead_pct);
    dgnn_obs::disable();
    let snap = dgnn_obs::snapshot();
    let json = dgnn_obs::export::snapshot_to_json(&snap, 0);
    if std::fs::create_dir_all("results").is_ok() {
        match std::fs::write("results/sanitize.json", &json) {
            Ok(()) => println!("\nwrote results/sanitize.json"),
            Err(e) => eprintln!("\nwarning: could not write results/sanitize.json: {e}"),
        }
    }

    if check {
        let mut failed = false;
        if !report.is_clean() {
            eprintln!("SANITIZE: {} violation(s) — see report above", report.violations.len());
            failed = true;
        }
        if report.kernels_proved.len() < registered {
            let proved = &report.kernels_proved;
            let missing: Vec<&str> = contract_names()
                .into_iter()
                .filter(|k| !proved.iter().any(|p| p == k))
                .collect();
            eprintln!("SANITIZE: registered kernels not proved by the battery: {missing:?}");
            failed = true;
        }
        if dropped > 0 {
            eprintln!("SANITIZE: {dropped} dispatches dropped; proof is incomplete");
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!("sanitize gate OK: {registered}/{registered} kernels proved, 0 violations");
    }
    ExitCode::SUCCESS
}
