//! Metrics registry: named counters, gauges, and min/max/sum histograms.
//!
//! Lookups take `&str` and only allocate a key on the *first* record of a
//! name, so steady-state training loops run allocation-free. All state is
//! thread-local, matching the single-threaded training executor; the
//! `Snapshot` type is plain owned data and crosses threads freely.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::ops::OpStat;

thread_local! {
    static COUNTERS: RefCell<BTreeMap<String, u64>> = const { RefCell::new(BTreeMap::new()) };
    static GAUGES: RefCell<BTreeMap<String, f64>> = const { RefCell::new(BTreeMap::new()) };
    static HISTS: RefCell<BTreeMap<String, HistStat>> = const { RefCell::new(BTreeMap::new()) };
}

/// Aggregate of every value recorded into one histogram.
///
/// Count/sum/min/max is enough for the repo's questions (mean loss per
/// epoch, gradient-norm spread); full quantile sketches can slot in later
/// behind the same name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStat {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl HistStat {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn new(v: f64) -> Self {
        Self { count: 1, sum: v, min: v, max: v }
    }

    /// Folds `other` into `self` — the aggregate of both sample streams.
    /// Empty stats are the identity, so folding a fresh collector in is a
    /// no-op.
    pub fn merge(&mut self, other: &HistStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Point-in-time copy of the whole registry (metrics + per-op profiles).
///
/// Produced by [`crate::snapshot`]; serialized by
/// [`crate::export::snapshot_to_json`] — the one serialization code path
/// shared by `memplan`'s `analysis-baseline.json` and the `profile`
/// binary's `BENCH_profile.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms.
    pub histograms: BTreeMap<String, HistStat>,
    /// Per-op-kind forward/backward profiles.
    pub ops: BTreeMap<String, OpStat>,
}

/// Adds `delta` to the named counter (no-op while disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !crate::is_enabled() {
        return;
    }
    COUNTERS.with(|m| {
        let mut m = m.borrow_mut();
        match m.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                m.insert(name.to_string(), delta);
            }
        }
    });
}

/// Sets the named gauge to `value` (no-op while disabled).
pub fn gauge_set(name: &str, value: f64) {
    if !crate::is_enabled() {
        return;
    }
    GAUGES.with(|m| {
        let mut m = m.borrow_mut();
        match m.get_mut(name) {
            Some(v) => *v = value,
            None => {
                m.insert(name.to_string(), value);
            }
        }
    });
}

/// Records `value` into the named histogram (no-op while disabled).
pub fn hist_record(name: &str, value: f64) {
    if !crate::is_enabled() {
        return;
    }
    HISTS.with(|m| {
        let mut m = m.borrow_mut();
        match m.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                m.insert(name.to_string(), HistStat::new(value));
            }
        }
    });
}

/// Folds a precomputed aggregate into the named histogram (no-op while
/// disabled or when `stat` is empty). Byte-equivalent to recording each of
/// the `stat.count` underlying values one at a time — bounded collectors
/// (e.g. the serving tier's streaming histograms) use this to publish
/// without replaying raw samples they no longer hold.
pub fn hist_merge(name: &str, stat: HistStat) {
    if !crate::is_enabled() || stat.count == 0 {
        return;
    }
    HISTS.with(|m| {
        let mut m = m.borrow_mut();
        match m.get_mut(name) {
            Some(h) => h.merge(&stat),
            None => {
                m.insert(name.to_string(), stat);
            }
        }
    });
}

pub(crate) fn snapshot_metrics() -> Snapshot {
    Snapshot {
        counters: COUNTERS.with(|m| m.borrow().clone()),
        gauges: GAUGES.with(|m| m.borrow().clone()),
        histograms: HISTS.with(|m| m.borrow().clone()),
        ops: BTreeMap::new(),
    }
}

pub(crate) fn clear() {
    COUNTERS.with(|m| m.borrow_mut().clear());
    GAUGES.with(|m| m.borrow_mut().clear());
    HISTS.with(|m| m.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_byte_equivalent_to_replaying_samples() {
        let mut replayed = HistStat::new(1.0);
        replayed.record(4.0);
        replayed.record(-2.0);
        let mut merged = HistStat::new(1.0);
        merged.merge(&{
            let mut other = HistStat::new(4.0);
            other.record(-2.0);
            other
        });
        assert_eq!(merged, replayed);
        // Empty on either side is the identity.
        let empty = HistStat { count: 0, sum: 0.0, min: 0.0, max: 0.0 };
        let mut m = replayed;
        m.merge(&empty);
        assert_eq!(m, replayed);
        let mut e = empty;
        e.merge(&replayed);
        assert_eq!(e, replayed);
    }

    #[test]
    fn hist_stat_tracks_extremes_and_mean() {
        let mut h = HistStat::new(2.0);
        h.record(-1.0);
        h.record(5.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 5.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }
}
