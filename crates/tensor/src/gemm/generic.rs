//! Portable unrolled scalar 8×8 microkernel over packed panels — the
//! always-available fallback backend.
//!
//! Same packed layout and tile geometry as the SIMD kernels, implemented
//! with plain `mul` + `add` (two roundings per step, like the legacy
//! scalar loops — software `mul_add` would be correct but slow on
//! hardware without FMA, which is exactly where this kernel runs). Each
//! output element folds over ascending `kk` from `0.0` in a fixed tile
//! slot, so parallel results are bit-identical to serial.

use super::{MR, NR};

/// Computes one `MR × NR` tile over packed panels and stores the
/// `rows × cols` live corner into `out[c0..]` with row stride `rsc`;
/// `acc` adds one `+` per element instead of overwriting. Safe code: all
/// indexing is slice-checked.
#[allow(clippy::too_many_arguments)] // mirrors the unsafe SIMD kernel ABI
pub(crate) fn kernel_8x8(
    k: usize,
    pa: &[f32],
    pb: &[f32],
    out: &mut [f32],
    c0: usize,
    rsc: usize,
    rows: usize,
    cols: usize,
    acc: bool,
) {
    let mut t = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let a = &pa[kk * MR..kk * MR + MR];
        let b = &pb[kk * NR..kk * NR + NR];
        for (i, ti) in t.iter_mut().enumerate() {
            let ai = a[i];
            for (tij, &bj) in ti.iter_mut().zip(b) {
                *tij += ai * bj;
            }
        }
    }
    for (i, ti) in t.iter().enumerate().take(rows) {
        let row = &mut out[c0 + i * rsc..c0 + i * rsc + cols];
        if acc {
            for (o, &v) in row.iter_mut().zip(ti) {
                *o += v;
            }
        } else {
            row.copy_from_slice(&ti[..cols]);
        }
    }
}
